// TunerService: a thread-safe online tuning service wrapping any Tuner
// (WFIT, WFA+, BC) behind a concurrent ingestion pipeline.
//
//   producers ──Submit/SubmitAt──▶ IngestQueue (bounded, sequence-ordered)
//                                       │  PopBatch
//                                       ▼
//                              analysis worker thread
//                        (AnalyzeQuery per statement, DBA
//                         feedback interleaved at statement
//                         boundaries, snapshot publication)
//                                       │
//              Recommendation() ◀── versioned snapshot (readers never
//                                   block on analysis)
//
// Determinism contract: the analysis order equals the sequence-number
// order of submitted statements, and feedback registered with
// FeedbackAfter(k, ...) is applied immediately after statement k — so a
// multi-threaded replay of a workload (statement i submitted at sequence i
// from any thread) produces exactly the recommendation trajectory of a
// serial run of the same tuner on the same workload.
//
// Durability contract (options.checkpoint_dir, created via Open): every
// ingested statement is appended to a write-ahead journal and fsynced
// before analysis; applied DBA votes are journaled with the boundary at
// which they took effect and made durable before any later analysis. State
// snapshots are taken at batch boundaries (serialized with analysis, so
// they are consistent) every checkpoint_every_statements. After a crash,
// Open loads the newest valid snapshot (falling back past corrupt ones)
// and replays only the journal suffix beyond it — the recovered service
// continues the exact recommendation trajectory of an uninterrupted run.
#ifndef WFIT_SERVICE_TUNER_SERVICE_H_
#define WFIT_SERVICE_TUNER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "core/index_set.h"
#include "core/tuner.h"
#include "persist/delta.h"
#include "persist/journal.h"
#include "service/ingest_queue.h"
#include "service/metrics.h"
#include "workload/statement.h"

namespace wfit::service {

class FsyncBatcher;

/// Adaptive overload control: a three-state controller (Normal → Shedding
/// → Sampling) evaluated once per batch from the queue fill fraction.
/// Shedding drops statements whose template fingerprint matches a recent
/// analyzed statement (duplicates carry little new evidence); Sampling
/// uniformly keeps each statement with probability `rate`, drawn from a
/// deterministic per-tenant seeded stream, and scales every kept
/// statement's benefit contribution by 1/rate so WFIT's windowed
/// statistics stay unbiased estimates of the full stream ("honest
/// sampling"). Every transition is journaled as an epoch record and the
/// controller state rides in snapshots, so a recovered tenant re-derives
/// the exact shed/sample decisions — the trajectory is reproducible.
/// Dropped statements still ride the full durability path (WAL record,
/// vote slots, analyzed marker, publication); only AnalyzeQuery is
/// skipped, so sequence contiguity and exactly-once semantics hold.
struct OverloadOptions {
  /// Master switch; off preserves the pre-QoS trajectory bit-for-bit.
  bool enabled = false;
  /// Queue fill fraction at/above which the controller degrades one step
  /// per batch: Normal → Shedding → Sampling → halve the rate.
  double high_watermark = 0.75;
  /// Queue fill fraction at/below which it recovers one step per batch:
  /// double the rate → Shedding → Normal.
  double low_watermark = 0.25;
  /// Sampling never drops below this rate (QoS knob: sample_floor).
  double sample_floor = 0.10;
  /// Seed of the per-tenant sampling stream. The router derives it from
  /// the tenant id, so a tenant's decisions are reproducible across
  /// incarnations; a journaled/snapshotted seed wins on recovery.
  uint64_t sample_seed = 0;
  /// Fingerprints of recently analyzed statements retained for duplicate
  /// shedding.
  size_t dup_window = 64;
};

struct TunerServiceOptions {
  /// Bound on buffered statements; producers beyond it experience
  /// backpressure.
  size_t queue_capacity = 1024;
  /// The worker drains at most this many statements per batch.
  size_t max_batch = 32;
  /// Width of the analysis worker pool for intra-statement parallelism
  /// (per-part IBG construction + WFA updates fan out across it). 0 means
  /// hardware_concurrency; 1 means serial analysis (no pool). Statements
  /// remain strictly serialized either way — only work *inside* one
  /// statement parallelizes, so the determinism contract is unchanged.
  size_t analysis_threads = 0;
  /// Record the recommendation after every analyzed statement (for
  /// determinism tests and offline inspection). Off in production.
  bool record_history = false;

  // --- Durability (persist/) --------------------------------------------
  /// Directory for the write-ahead journal + state snapshots. Empty
  /// disables persistence. Services with a checkpoint_dir must be created
  /// through TunerService::Open, which runs recovery first.
  std::string checkpoint_dir;
  /// Snapshot cadence: a checkpoint is taken at the first batch boundary
  /// after this many statements since the last one.
  uint64_t checkpoint_every_statements = 1024;
  /// Take a final checkpoint when the worker drains at Shutdown. False is
  /// crash-realistic shutdown: no parting snapshot, and future-keyed votes
  /// die un-applied (journaling them at an early boundary is something no
  /// real crash could do; recovery re-pins them instead).
  bool checkpoint_on_shutdown = true;
  /// fsync the journal once per ingested batch (before analysis) and
  /// whenever applied feedback precedes further analysis. Disabling trades
  /// crash durability for throughput (the journal is still written).
  bool sync_journal = true;
  /// Write most checkpoints as delta snapshots (the diff since the last
  /// checkpoint, chained by CRC back to a full image). Recovery applies
  /// the chain; any corruption falls back to the newest intact full.
  bool delta_snapshots = true;
  /// Force a full snapshot after this many consecutive deltas. Bounds both
  /// recovery work and the blast radius of a corrupt delta.
  uint64_t full_snapshot_every = 8;
  /// After a full checkpoint covers a journal prefix (two durable fulls),
  /// rewrite the journal without it. Keeps steady-state journal size
  /// proportional to the checkpoint interval, not total history.
  bool compact_journal = true;
  /// Skip compaction while the journal is smaller than this — rewriting a
  /// tiny file buys nothing and costs three fsyncs.
  uint64_t journal_compact_min_bytes = 64 * 1024;
  /// Group commit: when set, journal fsyncs go through this shared batcher
  /// (one kernel flush per drain window across all shards on the node)
  /// instead of per-service fdatasync. The batcher must outlive the
  /// service. sync_journal=false ignores it.
  FsyncBatcher* fsync_batcher = nullptr;

  /// Statements whose end-to-end latency (ingest enqueue through snapshot
  /// publication) exceeds this emit one structured NDJSON record with the
  /// per-stage breakdown. 0 disables the slow-statement log.
  uint64_t slow_statement_ms = 250;

  // --- QoS / overload ---------------------------------------------------
  /// Adaptive overload control (see OverloadOptions). Disabled by default.
  OverloadOptions overload;
  /// Admission control: when true, parameterless ProcessBatch sizes each
  /// batch from the current queue depth (small backlog → small batch →
  /// lower per-statement queue wait) instead of always asking for
  /// max_batch. Does not change the analysis trajectory — only how intake
  /// is grouped into batches.
  bool dynamic_batching = false;
  /// With dynamic batching, a queue-wait p99 (from the stage-latency
  /// histogram) above this budget forces full max_batch batches — drain
  /// throughput wins once latency is already blown. 0 disables the check.
  double batch_p99_budget_ms = 0.0;
};

/// What recovery found and replayed (TunerService::Open).
struct RecoveryStats {
  /// True when a snapshot restored cleanly; false on a cold start (any
  /// journal is then replayed from the beginning).
  bool snapshot_loaded = false;
  uint64_t snapshot_analyzed = 0;
  /// Corrupt / version-mismatched snapshots skipped before one loaded.
  uint64_t snapshots_skipped = 0;
  /// Delta snapshots applied on top of the restored full image.
  uint64_t deltas_applied = 0;
  uint64_t replayed_statements = 0;
  uint64_t replayed_feedback = 0;
  /// Statements that were WAL-journaled but not yet durably analyzed at
  /// the crash (at most one batch): put back into the ingest queue so the
  /// restarted worker analyzes them — after any votes the driver re-pins
  /// at their boundaries.
  uint64_t requeued_statements = 0;
  /// Total statements reflected in the recovered state; producers replaying
  /// a deterministic workload should resume submitting at this sequence,
  /// and re-register votes for boundaries >= it.
  uint64_t analyzed = 0;
};

/// An immutable, versioned view of the tuner's recommendation. Obtained
/// lock-free of the analysis path; hold it as long as convenient.
struct RecommendationSnapshot {
  IndexSet configuration;
  /// Statements analyzed when this snapshot was published.
  uint64_t analyzed = 0;
  /// Monotone publication counter (feedback application also bumps it).
  uint64_t version = 0;
};

class TunerService {
 public:
  /// The service takes ownership of the tuner: after Start() the worker
  /// thread is the only caller of tuner->AnalyzeQuery()/Feedback(), which
  /// is what makes single-threaded Tuner implementations safe to serve
  /// concurrent producers. Requires options.checkpoint_dir to be empty —
  /// durable services are created through Open so recovery always runs.
  TunerService(std::unique_ptr<Tuner> tuner, TunerServiceOptions options = {});

  /// Creates a service with durability: loads the latest valid snapshot
  /// from options.checkpoint_dir (falling back past corrupt ones), replays
  /// the journal suffix beyond it — exactly once — and opens the journal
  /// for appending. The tuner must be constructed with the same
  /// configuration (and `pool`) as the run that wrote the checkpoint; on a
  /// fresh directory this is an ordinary cold start. Call Start() on the
  /// result as usual. With an empty checkpoint_dir, equivalent to the
  /// constructor (pool may then be null).
  static StatusOr<std::unique_ptr<TunerService>> Open(
      std::unique_ptr<Tuner> tuner, IndexPool* pool,
      TunerServiceOptions options = {}, RecoveryStats* recovery = nullptr);

  /// Shuts down (draining buffered statements) if still running.
  ~TunerService();

  TunerService(const TunerService&) = delete;
  TunerService& operator=(const TunerService&) = delete;

  /// Spawns the analysis worker. Must be called exactly once.
  void Start();

  /// Closes the intake, waits for every buffered statement to be analyzed
  /// and pending feedback to be applied, and joins the worker. Idempotent.
  /// In detached mode (StartDetached) the caller must have stopped issuing
  /// ProcessBatch calls first; Shutdown then drains inline.
  void Shutdown();

  // --- Detached mode (TenantRouter) --------------------------------------
  // A detached service spawns no worker thread: an external scheduler (the
  // tenant router's shared drain threads) calls ProcessBatch whenever the
  // queue has deliverable work. ProcessBatch / FinishDetached /
  // CloseForEviction / Shutdown must be externally serialized per service;
  // producers (Submit*/Feedback*/Recommendation/Wait*) stay free-threaded
  // exactly as in owned-worker mode.

  /// Votes keyed to statement boundaries the service has not reached yet
  /// (extracted at eviction, re-registered on the recovered incarnation).
  using PendingVotes =
      std::multimap<uint64_t, std::pair<IndexSet, IndexSet>>;

  /// Starts the service without a worker thread. `analysis_pool` (may be
  /// null for serial analysis) is shared across services for
  /// intra-statement fan-out; the service does not own it. Mutually
  /// exclusive with Start().
  void StartDetached(WorkerPool* analysis_pool);

  /// Drains at most one batch (non-blocking): pops up to max_batch
  /// contiguous statements, write-ahead journals them, analyzes each with
  /// deterministic feedback interleaving, publishes, and checkpoints on
  /// cadence — the exact per-batch path of the owned worker. Returns the
  /// number of statements analyzed (0 = nothing deliverable).
  size_t ProcessBatch();

  /// ProcessBatch with explicit admission limits (the router's DRR
  /// scheduler): drains at most `max_statements`, and once `max_bytes` is
  /// positive the batch also stops before the statement that would exceed
  /// that many approximate statement bytes (always delivering at least
  /// one). Same per-batch path otherwise.
  size_t ProcessBatch(size_t max_statements, size_t max_bytes);

  /// Closes the intake, drains every remaining batch, applies all pending
  /// feedback and takes the shutdown checkpoint (if configured). After
  /// this the service is finished; ProcessBatch must not be called again.
  void FinishDetached();

  /// True when ProcessBatch would analyze at least one statement now (the
  /// router's scheduling predicate).
  bool HasDeliverableWork() const { return queue_.CanPop(); }

  /// Buffered statements (including non-contiguous ones); 0 is the
  /// idleness predicate for lossless eviction.
  size_t QueueDepth() const { return queue_.depth(); }

  /// The lossless eviction path: closes the intake (the router only evicts
  /// idle services, so the drain is empty in practice), applies feedback
  /// that is already due (ASAP votes and votes keyed to analyzed
  /// statements), takes a final checkpoint unconditionally, and returns
  /// the votes keyed to future boundaries so the router can re-register
  /// them on the recovered incarnation — eviction never applies a vote
  /// early and never loses one.
  PendingVotes CloseForEviction();

  /// Blocking submission in arrival order; returns false iff shut down.
  bool Submit(Statement stmt);
  /// Non-blocking submission; returns false if the queue is full or the
  /// service is shut down (counted in metrics as a rejection).
  bool TrySubmit(Statement stmt);
  /// Deterministic submission: the statement is analyzed as the `seq`-th
  /// of the stream regardless of which thread submits first. See
  /// IngestQueue::PushAt for the contiguity contract. Returns false when
  /// shut down or when `seq` is already covered by recovered state (the
  /// statement is dropped — exactly-once analysis).
  bool SubmitAt(uint64_t seq, Statement stmt);
  /// Non-blocking SubmitAt for event-loop callers (the network front end):
  /// kWouldBlock instead of backpressure blocking, kDuplicate when `seq`
  /// is already covered (dropped — exactly-once), kClosed when shut down.
  PushAtResult TrySubmitAt(uint64_t seq, Statement stmt);
  /// Bounded-wait submission: blocks on backpressure at most until
  /// `deadline`, then reports kWouldBlock (counted as a rejection) — the
  /// queue-full answer for callers that must never wedge, e.g. the cluster
  /// node's request threads. kClosed when shut down.
  PushAtResult SubmitWithDeadline(Statement stmt,
                                  std::chrono::steady_clock::time_point
                                      deadline);
  /// Bounded-wait SubmitAt: kWouldBlock after `deadline` (the caller owns
  /// `seq` and may retry), kDuplicate when already covered (exactly-once),
  /// kClosed when shut down.
  PushAtResult SubmitAtWithDeadline(uint64_t seq, Statement stmt,
                                    std::chrono::steady_clock::time_point
                                        deadline);

  /// Registers a DBA vote applied at the next statement boundary (i.e.
  /// before the next AnalyzeQuery), serialized with analysis.
  void Feedback(IndexSet f_plus, IndexSet f_minus);
  /// Registers a DBA vote applied immediately after statement `after_seq`
  /// is analyzed — the deterministic variant. If that statement was
  /// already analyzed, the vote is applied at the next boundary.
  void FeedbackAfter(uint64_t after_seq, IndexSet f_plus, IndexSet f_minus);

  /// Current published snapshot; never blocks on analysis. Non-null once
  /// Start() has run (the first snapshot carries the initial
  /// configuration with analyzed == 0).
  std::shared_ptr<const RecommendationSnapshot> Recommendation() const;

  /// Blocks until at least `n` statements have been analyzed, or the
  /// worker has stopped (shutdown). Returns true iff `n` was reached.
  bool WaitUntilAnalyzed(uint64_t n) const;
  uint64_t analyzed() const;

  /// Merged service + queue metrics.
  MetricsSnapshot Metrics() const;

  /// Per-statement recommendation history; statement i's entry is the
  /// recommendation right after it was analyzed (feedback applied at that
  /// boundary included). Requires options.record_history; call after
  /// Shutdown() or synchronize via WaitUntilAnalyzed().
  std::vector<IndexSet> History() const;

  const Tuner& tuner() const { return *tuner_; }
  std::string name() const { return tuner_->name(); }

 private:
  void WorkerLoop();
  /// The shared per-batch path: WAL append + fsync, per-statement analysis
  /// with deterministic feedback interleaving, publication, cadence
  /// checkpointing. Worker thread or externally-serialized caller only.
  void AnalyzeBatch(std::vector<Statement>& batch, uint64_t first_seq,
                    size_t n, const std::vector<IngestMeta>& meta);
  /// End-of-stream epilogue: remaining feedback (all of it when
  /// `apply_all_feedback`, only due votes otherwise), final checkpoint
  /// (`force_checkpoint` overrides options.checkpoint_on_shutdown), and
  /// the worker-done handshake.
  void DrainTail(bool apply_all_feedback, bool force_checkpoint);
  /// Applies ASAP feedback plus keyed feedback with after_seq < `seq`
  /// (with_asap) or after_seq <= `seq` (boundary application), journaling
  /// each applied vote at `boundary` (the analyzed count at application
  /// time) in the pre-statement (post=false) or post-statement (post=true)
  /// slot. Returns true if any vote was applied.
  bool ApplyFeedback(uint64_t seq, bool inclusive, bool with_asap,
                     uint64_t boundary, bool post);
  /// Applies everything still pending (drain path).
  bool ApplyAllFeedback();
  void Publish();

  // --- Overload controller (analysis thread only) -----------------------
  /// A journaled epoch transition pending adoption: recovery collects
  /// epochs whose effect point lies beyond the replayed trajectory (they
  /// cover re-queued intake); the worker adopts each one when it reaches
  /// that sequence, before deciding any transition of its own.
  struct PendingEpoch {
    uint64_t seq = 0;
    uint8_t mode = 0;
    double rate = 1.0;
    uint64_t seed = 0;
  };
  /// Applies every pending epoch whose effect point is <= `seq`.
  void AdoptEpochsUpTo(uint64_t seq);
  /// Evaluates the three-state transition from the current queue fill and
  /// journals an epoch record effective at `first_seq` if the state
  /// changed. Batch start only, after epoch adoption.
  void MaybeTransition(uint64_t first_seq);
  /// The keep/drop decision for one statement under the current epoch,
  /// also maintaining the duplicate window. Deterministic: a pure function
  /// of (epoch state, seq, statement fingerprints seen so far), so replay
  /// re-derives identical decisions. Sets `*shed` when the drop was a
  /// duplicate shed (vs. sampled out).
  bool OverloadDecide(uint64_t seq, const Statement& stmt, bool* shed);
  /// Installs the statement weight (1/rate in Sampling, else 1.0) into the
  /// tuner if it changed.
  void ApplyStatementWeight();
  /// Batch size for the parameterless ProcessBatch under dynamic batching.
  size_t DynamicBatchLimit() const;

  uint8_t overload_mode_ = 0;  // 0 Normal, 1 Shedding, 2 Sampling
  double sample_rate_ = 1.0;
  uint64_t sample_seed_ = 0;
  /// Fingerprints of recently kept statements, oldest first.
  std::deque<uint64_t> dup_window_;
  double current_weight_ = 1.0;
  std::vector<PendingEpoch> pending_epochs_;  // sorted by seq (stable)
  size_t pending_epoch_cursor_ = 0;

  // --- persist/ integration (worker thread only) ------------------------
  /// Recovery at Open: snapshot restore + journal suffix replay.
  Status Recover(RecoveryStats* stats);
  /// Appends one record through `fn`; a failure permanently disables
  /// journaling + checkpointing (durability degrades, service lives on).
  template <typename Fn>
  void JournalAppend(Fn&& fn);
  void SyncJournalIfDirty();
  /// The trailing per-batch sync: with a group-commit batcher this defers
  /// durability to the next drain window (the journal stays dirty, so the
  /// next batch's front barrier still blocks before further analysis
  /// depends on it); without one it is a plain SyncJournalIfDirty.
  void TailSyncJournal();
  /// Closes the journal, first Forgetting its fd from any batcher (a
  /// batched sync against a recycled descriptor would hit the wrong file).
  void CloseJournal();
  /// Snapshot at a batch boundary once the cadence has elapsed (`force`
  /// for the shutdown checkpoint).
  void MaybeCheckpoint(bool force);
  /// After a full checkpoint extended the covered horizon: rewrite the
  /// journal without the covered prefix and reopen the writer in the
  /// shifted LSN domain.
  void MaybeCompactJournal(uint64_t cover_lsn);
  void PushJournalMetrics();

  std::unique_ptr<Tuner> tuner_;
  TunerServiceOptions options_;
  IngestQueue queue_;
  /// Pool backing the tuner's index ids; needed (and non-null) only when
  /// checkpointing, to persist/verify the interning order.
  IndexPool* pool_ = nullptr;
  std::unique_ptr<persist::JournalWriter> journal_;
  bool journal_dirty_ = false;
  /// Delta/full checkpoint state machine (diff base, chain position,
  /// covered-LSN horizon). Lives even when delta_snapshots is off — it
  /// then just writes fulls and tracks the compaction horizon.
  persist::DeltaCheckpointer checkpointer_;
  /// Required syncs served through the shared batcher; added to the
  /// writer's own syncs() for the journal_syncs metric.
  uint64_t batched_syncs_ = 0;
  uint64_t last_checkpoint_analyzed_ = 0;
  bool have_checkpoint_ = false;
  /// Statements below this sequence are already in the journal (recovery
  /// requeued them); the worker skips their WAL append.
  uint64_t journal_stmt_skip_until_ = 0;
  /// Owned pool for intra-statement parallel analysis; created by Start()
  /// when the resolved analysis_threads exceeds one.
  std::unique_ptr<WorkerPool> analysis_pool_;
  ServiceMetrics metrics_;
  std::thread worker_;
  // Lifecycle state; guarded so Shutdown() is safe to race with the
  // destructor or another owner thread.
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool joined_ = false;
  bool detached_ = false;  // StartDetached: no worker thread
  bool finished_ = false;  // detached service fully drained/evicted

  // Pending feedback: keyed entries apply right after their statement;
  // ASAP entries apply at the next statement boundary. FIFO within a key.
  mutable std::mutex feedback_mu_;
  std::multimap<uint64_t, std::pair<IndexSet, IndexSet>> pending_feedback_;
  std::vector<std::pair<IndexSet, IndexSet>> asap_feedback_;

  // Published snapshot (pointer swap under a short critical section).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const RecommendationSnapshot> snapshot_;

  // Analysis progress for WaitUntilAnalyzed.
  mutable std::mutex progress_mu_;
  mutable std::condition_variable progress_cv_;
  uint64_t analyzed_ = 0;
  bool worker_done_ = false;

  mutable std::mutex history_mu_;
  std::vector<IndexSet> history_;
};

}  // namespace wfit::service

#endif  // WFIT_SERVICE_TUNER_SERVICE_H_
