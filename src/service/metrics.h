// ServiceMetrics: thread-safe counters/gauges/histograms for the online
// tuning service, with a Prometheus-style text export. Producers, the
// analysis worker and metric readers touch disjoint atomics, so recording
// never serializes the hot path.
#ifndef WFIT_SERVICE_METRICS_H_
#define WFIT_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/stages.h"

namespace wfit::service {

/// Upper bounds (microseconds) of the analysis-latency buckets; the last
/// bucket is +inf. Log-spaced: WFIT analysis spans ~10us (cache hit, tiny
/// IBG) to ~100ms (repartition storms).
inline constexpr std::array<double, 8> kLatencyBucketUpperUs = {
    10.0, 50.0, 250.0, 1000.0, 5000.0, 25000.0, 100000.0, 500000.0};
inline constexpr size_t kLatencyBucketCount = kLatencyBucketUpperUs.size() + 1;

/// A point-in-time copy of every service metric, safe to read at leisure.
struct MetricsSnapshot {
  // Ingestion.
  uint64_t statements_submitted = 0;
  uint64_t submit_rejected = 0;  // TrySubmit refusals (queue full)
  uint64_t queue_depth = 0;      // gauge at snapshot time
  uint64_t queue_capacity = 0;
  uint64_t queue_high_water = 0;  // max depth ever observed
  uint64_t push_waits = 0;        // blocking pushes that hit backpressure

  // Analysis.
  uint64_t statements_analyzed = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  uint64_t feedback_applied = 0;
  uint64_t repartitions = 0;  // from Tuner::RepartitionCount()
  uint64_t analysis_threads = 1;  // worker-pool width (1 = serial)

  // What-if memoization (two-tier cache inside the tuner; from
  // Tuner::WhatIfCache()). Every hit — statement-scoped or
  // cross-statement — is one avoided optimizer call.
  uint64_t what_if_cache_hits = 0;
  uint64_t what_if_cache_misses = 0;
  uint64_t what_if_cross_hits = 0;  // cross-statement (template) tier

  // Overload control (QoS): the three-state Normal → Shedding → Sampling
  // controller's decisions. Skipped statements still advance the sequence
  // (they are journaled and markered); they just never reach the tuner.
  uint64_t overload_shed = 0;         // duplicate templates shed
  uint64_t overload_sampled_out = 0;  // dropped by uniform sampling
  uint64_t overload_transitions = 0;  // journaled epoch changes
  uint64_t overload_mode = 0;         // gauge: 0 Normal, 1 Shed, 2 Sample
  double sample_rate = 1.0;           // gauge: current sampling rate

  // Snapshot publication.
  uint64_t snapshot_version = 0;

  // Durability (persist/): checkpointing and write-ahead journal. All
  // zero when the service runs without a checkpoint_dir.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t last_checkpoint_seq = 0;       // analyzed count at last snapshot
  double last_checkpoint_unix_seconds = 0.0;  // wall time of last snapshot
  uint64_t last_snapshot_bytes = 0;
  /// Delta snapshots: checkpoints that shipped only the state diff since
  /// the previous checkpoint. checkpoints_written counts both kinds.
  uint64_t checkpoints_delta = 0;
  uint64_t last_delta_bytes = 0;
  uint64_t journal_records = 0;           // records in the journal file
  uint64_t journal_bytes = 0;
  uint64_t journal_syncs = 0;
  /// Journal prefix rewrites after a full checkpoint, and the bytes they
  /// reclaimed.
  uint64_t journal_compactions = 0;
  uint64_t journal_compacted_bytes = 0;
  /// Journal write/fsync failures; any nonzero value means journaling was
  /// permanently disabled for this process (durability degraded).
  uint64_t journal_failures = 0;
  // Recovery (set once at Open): what the last startup replayed.
  uint64_t recovery_snapshot_loaded = 0;  // 1 if a snapshot restored
  uint64_t recovery_snapshots_skipped = 0;  // corrupt snapshots passed over
  uint64_t recovery_replayed_statements = 0;
  uint64_t recovery_replayed_feedback = 0;

  /// Seconds since the last checkpoint at `now_unix_seconds`; 0 before the
  /// first checkpoint.
  double checkpoint_age_seconds(double now_unix_seconds) const;

  // Analysis latency histogram (per AnalyzeQuery call).
  std::array<uint64_t, kLatencyBucketCount> latency_counts{};
  double latency_total_us = 0.0;

  // Per-stage latency histograms (same bucket bounds), indexed by
  // obs::Stage: queue-wait, IBG build, real what-if probes, checkpoint
  // writes. Captured through the obs::StageSink that ServiceMetrics
  // implements — populated with or without tracing compiled in.
  std::array<std::array<uint64_t, kLatencyBucketCount>, obs::kStageCount>
      stage_counts{};
  std::array<double, obs::kStageCount> stage_total_us{};

  uint64_t stage_count(obs::Stage stage) const;
  double stage_mean_us(obs::Stage stage) const;

  uint64_t latency_count() const;
  double mean_latency_us() const;
  double mean_batch() const;
  /// (hits + cross_hits) / all probes; 0 when no probes were memoized.
  double what_if_cache_hit_rate() const;
  /// cross_hits / all probes (the cross-statement tier's contribution).
  double what_if_cross_hit_rate() const;
  /// Smallest bucket upper bound covering quantile `q` of latencies (a
  /// conservative estimate; exact values are not retained).
  double LatencyQuantileUpperUs(double q) const;
  /// Same conservative bucket-upper-bound quantile over one stage's
  /// histogram (the admission controller reads queue-wait p99 from here).
  double StageQuantileUpperUs(obs::Stage stage, double q) const;
};

/// Writes the snapshot in Prometheus text exposition format
/// (`wfit_service_*` metric families).
void ExportText(const MetricsSnapshot& snapshot, std::ostream& os);
std::string ExportText(const MetricsSnapshot& snapshot);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double-quote and newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

/// Accumulates `from` into `into`: counters and histogram buckets add,
/// watermark gauges (max_batch, queue_high_water, checkpoint recency) take
/// the maximum, and instantaneous gauges (queue depth/capacity, snapshot
/// bytes) add. Used both to roll per-tenant series up into an aggregate
/// and to carry a tenant's counters across evict/re-admit cycles, so
/// accumulated counters stay monotone.
void AccumulateCounters(MetricsSnapshot* into, const MetricsSnapshot& from);

/// Writes per-tenant labelled series (`wfit_tenant_*{tenant="..."}`
/// families) for every (tenant id, snapshot) pair — one HELP/TYPE header
/// per family, one labelled sample per tenant, tenants in the order given
/// (the router passes them sorted by id).
void ExportTenantText(
    const std::vector<std::pair<std::string, MetricsSnapshot>>& tenants,
    std::ostream& os);

/// The live, concurrently-updated metrics. TunerService owns one; the
/// ingest queue contributes its gauges when the service snapshots.
/// Doubles as the obs::StageSink the service installs around analysis, so
/// stage timers anywhere below attribute their time here.
class ServiceMetrics : public obs::StageSink {
 public:
  void OnSubmit() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void OnSubmitRejected() {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnBatch(uint64_t size);
  void OnAnalyzed(double latency_us);
  /// obs::StageSink: buckets `ns` into the stage's latency histogram.
  void RecordStage(obs::Stage stage, uint64_t ns) override;
  void OnFeedback() { feedback_.fetch_add(1, std::memory_order_relaxed); }
  void OnOverloadDrop(bool shed) {
    (shed ? shed_ : sampled_out_).fetch_add(1, std::memory_order_relaxed);
  }
  void OnOverloadTransition(uint64_t mode, double sample_rate) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    SetOverloadState(mode, sample_rate);
  }
  void SetOverloadState(uint64_t mode, double sample_rate) {
    overload_mode_.store(mode, std::memory_order_relaxed);
    sample_rate_ppm_.store(static_cast<uint64_t>(sample_rate * 1e6),
                           std::memory_order_relaxed);
  }
  /// Conservative bucket-upper-bound quantile of one live stage histogram
  /// (no full snapshot needed — the admission controller calls this per
  /// batch).
  double StageQuantileUpperUs(obs::Stage stage, double q) const;
  void OnPublish() { version_.fetch_add(1, std::memory_order_relaxed); }
  void SetRepartitions(uint64_t n) {
    repartitions_.store(n, std::memory_order_relaxed);
  }
  void SetWhatIfCache(uint64_t hits, uint64_t misses, uint64_t cross_hits) {
    wi_hits_.store(hits, std::memory_order_relaxed);
    wi_misses_.store(misses, std::memory_order_relaxed);
    wi_cross_hits_.store(cross_hits, std::memory_order_relaxed);
  }
  void SetAnalysisThreads(uint64_t n) {
    analysis_threads_.store(n, std::memory_order_relaxed);
  }
  /// `full` distinguishes a complete snapshot from a delta: snapshot_bytes
  /// stays the size of the last FULL image (the recovery floor), while
  /// delta writes only advance the delta gauges.
  void OnCheckpoint(uint64_t analyzed_seq, uint64_t bytes,
                    double unix_seconds, bool full = true) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    last_checkpoint_seq_.store(analyzed_seq, std::memory_order_relaxed);
    if (full) {
      last_snapshot_bytes_.store(bytes, std::memory_order_relaxed);
    } else {
      checkpoints_delta_.fetch_add(1, std::memory_order_relaxed);
      last_delta_bytes_.store(bytes, std::memory_order_relaxed);
    }
    last_checkpoint_unix_ms_.store(
        static_cast<uint64_t>(unix_seconds * 1000.0),
        std::memory_order_relaxed);
  }
  void OnCheckpointFailure() {
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnJournalFailure() {
    journal_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnJournalCompaction(uint64_t reclaimed_bytes) {
    journal_compactions_.fetch_add(1, std::memory_order_relaxed);
    journal_compacted_bytes_.fetch_add(reclaimed_bytes,
                                       std::memory_order_relaxed);
  }
  /// Journal gauges are pushed by the worker after each batch (the writer
  /// is single-threaded; readers just need a coherent snapshot).
  void SetJournal(uint64_t records, uint64_t bytes, uint64_t syncs) {
    journal_records_.store(records, std::memory_order_relaxed);
    journal_bytes_.store(bytes, std::memory_order_relaxed);
    journal_syncs_.store(syncs, std::memory_order_relaxed);
  }
  /// Set once after recovery, before the worker starts.
  void SetRecovery(bool snapshot_loaded, uint64_t snapshots_skipped,
                   uint64_t replayed_statements, uint64_t replayed_feedback) {
    recovery_loaded_.store(snapshot_loaded ? 1 : 0,
                           std::memory_order_relaxed);
    recovery_skipped_.store(snapshots_skipped, std::memory_order_relaxed);
    recovery_statements_.store(replayed_statements,
                               std::memory_order_relaxed);
    recovery_feedback_.store(replayed_feedback, std::memory_order_relaxed);
  }

  uint64_t snapshot_version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Queue gauges are merged in by the caller (TunerService) so this class
  /// stays decoupled from IngestQueue.
  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> analyzed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> feedback_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> sampled_out_{0};
  std::atomic<uint64_t> transitions_{0};
  std::atomic<uint64_t> overload_mode_{0};
  std::atomic<uint64_t> sample_rate_ppm_{1000000};
  std::atomic<uint64_t> repartitions_{0};
  std::atomic<uint64_t> wi_hits_{0};
  std::atomic<uint64_t> wi_misses_{0};
  std::atomic<uint64_t> wi_cross_hits_{0};
  std::atomic<uint64_t> analysis_threads_{1};
  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> last_checkpoint_seq_{0};
  std::atomic<uint64_t> last_checkpoint_unix_ms_{0};
  std::atomic<uint64_t> last_snapshot_bytes_{0};
  std::atomic<uint64_t> checkpoints_delta_{0};
  std::atomic<uint64_t> last_delta_bytes_{0};
  std::atomic<uint64_t> journal_records_{0};
  std::atomic<uint64_t> journal_bytes_{0};
  std::atomic<uint64_t> journal_syncs_{0};
  std::atomic<uint64_t> journal_failures_{0};
  std::atomic<uint64_t> journal_compactions_{0};
  std::atomic<uint64_t> journal_compacted_bytes_{0};
  std::atomic<uint64_t> recovery_loaded_{0};
  std::atomic<uint64_t> recovery_skipped_{0};
  std::atomic<uint64_t> recovery_statements_{0};
  std::atomic<uint64_t> recovery_feedback_{0};
  std::array<std::atomic<uint64_t>, kLatencyBucketCount> latency_counts_{};
  std::atomic<uint64_t> latency_total_ns_{0};
  std::array<std::array<std::atomic<uint64_t>, kLatencyBucketCount>,
             obs::kStageCount>
      stage_counts_{};
  std::array<std::atomic<uint64_t>, obs::kStageCount> stage_total_ns_{};
};

}  // namespace wfit::service

#endif  // WFIT_SERVICE_METRICS_H_
