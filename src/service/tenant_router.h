// TenantRouter: one deployment tuning many databases at once. The router
// owns N independent TunerService shards — one per tenant, each with its
// own Tuner, ingest queue and checkpoint directory <root>/<tenant>/ — all
// multiplexed over ONE shared analysis WorkerPool and a small fixed set of
// drain threads, so aggregate thread count stays bounded no matter how
// many tenants exist.
//
//   Submit(tenant, stmt) ──▶ shard ingest queue ──▶ ready ring (FIFO)
//                                                       │ one batch per turn
//                            drain threads ◀────────────┘
//                     (round-robin across ready shards; intra-statement
//                      work fans out on the shared analysis pool)
//
// Scheduling is round-robin at batch granularity: a shard that still has
// deliverable work after its turn re-enters the ready ring at the TAIL, so
// with R backlogged shards every one of them is served again within R
// turns — one hot tenant can never starve the rest (starvation-freedom is
// proven deterministically in tenant_router_test via DrainOne).
//
// Shards are created lazily by a tuner-factory callback the first time a
// tenant is routed. Under a configurable aggregate bound (resident tenant
// count and/or estimated resident bytes) the router evicts
// least-recently-active idle shards with a checkpoint-then-close
// lifecycle: the shard takes a final state snapshot, votes keyed to future
// statements are carried over, and the next touch re-admits the tenant by
// recovering that checkpoint — so eviction is lossless and the tenant's
// recommendation trajectory is bit-for-bit the one a dedicated,
// never-evicted TunerService would have produced.
//
// Every tenant's counters are exported as labelled Prometheus series
// (`wfit_tenant_*{tenant="..."}`) under one registry, with aggregate
// rollups (`wfit_service_*`) and router-level families (`wfit_router_*`).
#ifndef WFIT_SERVICE_TENANT_ROUTER_H_
#define WFIT_SERVICE_TENANT_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "core/index_set.h"
#include "core/tuner.h"
#include "persist/archive.h"
#include "service/fsync_batcher.h"
#include "service/metrics.h"
#include "service/tuner_service.h"

namespace wfit::service {

/// What the tuner factory returns for one tenant. The pool must be the one
/// the tuner interns into; it is required (and must outlive the router)
/// when the router checkpoints, and must be the same pool across
/// re-admissions of the tenant (snapshot restore re-interns and verifies
/// ids against it).
struct TenantTuner {
  std::unique_ptr<Tuner> tuner;
  IndexPool* pool = nullptr;
};

/// Called under the router lock whenever a tenant is (re-)admitted; must
/// construct the tenant's tuner with the same configuration every time
/// (the recovery determinism contract).
using TunerFactory = std::function<TenantTuner(const std::string& tenant_id)>;

/// A DBA vote pinned to a statement boundary (see
/// TunerService::FeedbackAfter).
struct PinnedVote {
  uint64_t after_seq = 0;
  IndexSet f_plus;
  IndexSet f_minus;
};

/// Called at every (re-)admission, after recovery but BEFORE the shard is
/// scheduled: returns the votes to pin for boundaries the recovered state
/// has not reached. This is the crash-safe way to re-register votes whose
/// journal record died with the process — registering them after admission
/// races the analysis of requeued intake (a vote whose boundary lies
/// inside that window would apply late). Boundaries below
/// `recovery.analyzed` are already reflected in the recovered state and
/// are dropped.
using VoteRepinner = std::function<std::vector<PinnedVote>(
    const std::string& tenant_id, const RecoveryStats& recovery)>;

/// Per-tenant QoS class for the weighted deficit-round-robin scheduler.
/// Scheduling is DRR at statement granularity: every turn a backlogged
/// shard's deficit grows by its quantum (weight × shard max_batch) and the
/// turn drains batches until the deficit is spent, so over any backlogged
/// interval tenants drain in proportion to their weights. The defaults
/// (weight 1, no byte budget) reproduce the previous one-batch-per-turn
/// round-robin exactly — per-tenant analysis trajectories are untouched by
/// scheduling either way, since DRR only reorders across tenants.
struct TenantQos {
  /// Relative drain share. Quantum per turn =
  /// max(1, round(weight × shard.max_batch)).
  double weight = 1.0;
  /// Per-batch byte budget: a turn's batches each stop before the
  /// statement that would exceed this many approximate statement bytes
  /// (always at least one statement). 0 = unbounded.
  size_t byte_budget = 0;
  /// Queue-wait p99 budget: enables the shard's dynamic batcher with this
  /// budget (small backlog → small batches for latency; full batches once
  /// the budget is blown). 0 = fixed max_batch batches.
  double p99_budget_ms = 0.0;
  /// Overload sampling floor for this tenant (overrides the shard
  /// template's OverloadOptions::sample_floor when positive).
  double sample_floor = 0.0;
};

struct TenantRouterOptions {
  /// Per-shard template (queue capacity, max_batch, history, checkpoint
  /// cadence...). checkpoint_dir must be empty — per-tenant directories
  /// are derived from checkpoint_root.
  TunerServiceOptions shard;
  /// Root of the multi-tenant checkpoint tree; each tenant persists under
  /// <root>/<encoded tenant id>/. Empty disables durability AND eviction
  /// (evicting without a checkpoint would lose state).
  std::string checkpoint_root;
  /// Width of the shared analysis pool for intra-statement parallelism,
  /// counting the draining thread: 1 = serial, 0 = hardware_concurrency,
  /// k = pool of k-1 helpers. Shared by every shard.
  size_t analysis_threads = 1;
  /// Concurrent shard drains (scheduler threads). 0 = no threads: the
  /// embedder steps the scheduler manually via DrainOne (tests, or an
  /// external event loop).
  size_t drain_threads = 1;
  /// Evict least-recently-active idle shards so at most this many tenants
  /// are resident. 0 = unbounded.
  size_t max_resident_tenants = 0;
  /// Evict so the estimated resident footprint stays under this bound.
  /// A shard's footprint is max(last snapshot size,
  /// min_tenant_footprint_bytes). 0 = unbounded.
  uint64_t max_resident_bytes = 0;
  /// Floor of the per-shard footprint estimate (a shard that has not
  /// checkpointed yet has no measured size).
  uint64_t min_tenant_footprint_bytes = 64 * 1024;
  /// Group commit: route every shard's journal fsyncs through one shared
  /// FsyncBatcher — one kernel flush per drain window across all resident
  /// shards (they share the checkpoint root's drive) instead of one
  /// fdatasync per shard per batch. Durability semantics are unchanged;
  /// see FsyncBatcher.
  bool group_commit = false;
  FsyncBatcher::Options group_commit_options;
  /// Cold-tenant archival: ArchiveColdTenants() packs the checkpoint
  /// trees of evicted tenants into append-only archive segments under
  /// <checkpoint_root>/_archive/ and removes their directories; the next
  /// touch (or migration) restores the tree transparently. Off keeps
  /// every evicted tenant as a live directory.
  bool archive_cold_tenants = false;
  /// Segment size the archive batches staged packs into.
  uint64_t archive_segment_bytes = 4 * 1024 * 1024;
  /// Optional crash-safe vote re-registration hook (see VoteRepinner).
  VoteRepinner repin;
  /// QoS class applied to tenants without an explicit entry below.
  TenantQos default_qos;
  /// Per-tenant QoS overrides (weight, byte budget, latency budget,
  /// sampling floor). Mutable at runtime via SetTenantQos.
  std::map<std::string, TenantQos> tenant_qos;
};

/// Per-tenant slice of RouterMetricsSnapshot. `service` is merged across
/// the tenant's incarnations (counters from evicted incarnations are
/// carried), so its counters are monotone for the lifetime of the router.
struct TenantMetricsEntry {
  std::string id;
  MetricsSnapshot service;
  uint64_t evictions = 0;
  bool resident = false;
  // Effective QoS class and scheduler state (wfit_router_qos_* series).
  double qos_weight = 1.0;
  uint64_t qos_byte_budget = 0;
  double drr_deficit = 0.0;
};

struct RouterMetricsSnapshot {
  /// Counter rollup over every tenant (incl. evicted incarnations).
  MetricsSnapshot aggregate;
  /// Sorted by tenant id.
  std::vector<TenantMetricsEntry> tenants;
  uint64_t tenants_known = 0;
  uint64_t tenants_resident = 0;
  uint64_t admissions = 0;  // shard creations, incl. re-admissions
  uint64_t evictions = 0;
  uint64_t resident_footprint_bytes = 0;
  /// Scheduler turns that drained nothing (e.g. a shard whose deliverable
  /// work vanished between scheduling and the turn); such a shard is idled
  /// instead of being re-queued, so the ring never spins on it.
  uint64_t empty_turns = 0;
  // Cold-tenant archival (zero when archival is off).
  uint64_t tenants_archived = 0;    // counter: trees packed into segments
  uint64_t tenants_unarchived = 0;  // counter: trees restored on re-touch
  uint64_t archive_segments = 0;
  uint64_t archive_live_bytes = 0;
  uint64_t archive_segment_bytes = 0;
  // Group commit (zero when no shared batcher is configured).
  uint64_t group_commit_cycles = 0;
  uint64_t group_commit_sync_calls = 0;
  uint64_t group_commit_required = 0;
  uint64_t group_commit_deferred = 0;
  uint64_t group_commit_syncfs = 0;
};

/// Prometheus text export of the whole registry: aggregate wfit_service_*
/// families, labelled wfit_tenant_*{tenant="..."} series, and router-level
/// wfit_router_* families.
void ExportRouterText(const RouterMetricsSnapshot& snapshot,
                      std::ostream& os);
std::string ExportRouterText(const RouterMetricsSnapshot& snapshot);

class TenantRouter {
 public:
  explicit TenantRouter(TunerFactory factory,
                        TenantRouterOptions options = {});
  /// Shuts down (draining every resident shard) if still running.
  ~TenantRouter();

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  /// Spawns the drain threads (if any) and the shared analysis pool. Must
  /// be called exactly once, before any routed operation.
  void Start();

  /// Stops the scheduler, then drains and closes every resident shard
  /// (applying pending feedback, taking shutdown checkpoints per the shard
  /// options). Idempotent. Routed operations fail afterwards.
  void Shutdown();

  // --- Routed operations (create the shard on first touch) --------------
  /// Blocking submission in the tenant's arrival order; returns false iff
  /// the router is shut down or the tenant failed to admit.
  bool Submit(const std::string& tenant, Statement stmt);
  /// Non-blocking submission; false when the tenant's queue is full (a
  /// rejection in that tenant's metrics), the router is shut down, or the
  /// tenant failed to admit.
  bool TrySubmit(const std::string& tenant, Statement stmt);
  /// Deterministic submission at an explicit per-tenant sequence number
  /// (see TunerService::SubmitAt; sequences already covered by recovered
  /// state are dropped — exactly-once per tenant).
  bool SubmitAt(const std::string& tenant, uint64_t seq, Statement stmt);
  /// Non-blocking SubmitAt for event-loop callers: kWouldBlock instead of
  /// backpressure blocking (retry later), kDuplicate when the sequence is
  /// already covered (exactly-once success), kClosed when the router is
  /// shut down or admission failed.
  PushAtResult TrySubmitAt(const std::string& tenant, uint64_t seq,
                           Statement stmt);
  /// Bounded-wait submission: blocks on the tenant's backpressure at most
  /// until `deadline`, then reports kWouldBlock — a producer can never
  /// wedge past its deadline no matter how overloaded the shard is.
  PushAtResult SubmitWithDeadline(const std::string& tenant, Statement stmt,
                                  std::chrono::steady_clock::time_point
                                      deadline);
  /// Bounded-wait SubmitAt (kWouldBlock after `deadline`; the caller owns
  /// the sequence and may retry it).
  PushAtResult SubmitAtWithDeadline(const std::string& tenant, uint64_t seq,
                                    Statement stmt,
                                    std::chrono::steady_clock::time_point
                                        deadline);

  /// Replaces the tenant's QoS class. Weight and byte budget take effect
  /// at the shard's next scheduler turn; the latency budget and sampling
  /// floor configure the shard service and take effect at its next
  /// (re-)admission.
  void SetTenantQos(const std::string& tenant, TenantQos qos);
  /// The tenant's effective QoS class (the default when never set).
  TenantQos GetTenantQos(const std::string& tenant) const;

  /// DBA votes, routed by tenant (see TunerService::Feedback*).
  void Feedback(const std::string& tenant, IndexSet f_plus,
                IndexSet f_minus);
  void FeedbackAfter(const std::string& tenant, uint64_t after_seq,
                     IndexSet f_plus, IndexSet f_minus);

  /// The tenant's current published recommendation (recovered state for a
  /// freshly re-admitted tenant); nullptr if admission failed.
  std::shared_ptr<const RecommendationSnapshot> Recommendation(
      const std::string& tenant);

  /// Blocks until the tenant analyzed `n` statements or its shard stopped.
  bool WaitUntilAnalyzed(const std::string& tenant, uint64_t n);
  uint64_t analyzed(const std::string& tenant);

  /// Per-statement recommendation history across incarnations: history
  /// retired at evictions, then the live shard's (requires
  /// options.shard.record_history). After clean evictions the
  /// concatenation is seamless; after a crash the live part starts at the
  /// recovered snapshot (see RecoveryStats).
  std::vector<IndexSet> History(const std::string& tenant);

  /// What the tenant's latest (re-)admission recovered.
  RecoveryStats LastRecovery(const std::string& tenant);

  /// Sequence number of the first entry History(tenant) covers on this
  /// router: 0 for a tenant first admitted cold, the handoff snapshot's
  /// analyzed count for one admitted from a migrated (or crash-recovered)
  /// checkpoint tree. Non-admitting; 0 for unknown tenants.
  uint64_t HistoryStart(const std::string& tenant) const;

  /// True when the tenant currently has a live shard. Non-admitting.
  bool IsResident(const std::string& tenant) const;

  // --- Scheduling / lifecycle hooks --------------------------------------
  /// Manually runs one scheduler turn: drains one batch from the shard at
  /// the head of the ready ring and re-queues it at the tail if it still
  /// has work. Returns the tenant drained, or "" when nothing was ready.
  /// The deterministic stepping mode used with drain_threads = 0.
  std::string DrainOne();

  /// Checkpoint-then-close the tenant's shard now. Returns false when the
  /// tenant is not resident, is mid-drain, has buffered statements, or the
  /// router has no checkpoint_root (eviction would be lossy). Note the
  /// eviction (and lazy admission/recovery) runs under the router lock, so
  /// its snapshot write — single-digit milliseconds for an idle shard —
  /// briefly serializes routing; a kEvicting state that drops the lock
  /// around the I/O is the known follow-up if eviction storms ever show up
  /// in the drain-latency histogram.
  bool Evict(const std::string& tenant);

  /// Evicts every idle resident tenant; returns how many were evicted.
  size_t EvictIdle();

  // --- Migration handoff (cluster/) --------------------------------------
  /// Moves out the future-keyed votes an eviction carried for this tenant
  /// so they can be shipped to another node alongside the packed
  /// checkpoint tree. FailedPrecondition while the tenant is resident
  /// (evict first — taking votes from under a live shard would lose them);
  /// an unknown tenant simply has none. After a successful take the next
  /// local admission no longer re-registers them, so the tenant can only
  /// continue where the votes went.
  StatusOr<TunerService::PendingVotes> TakeCarriedVotes(
      const std::string& tenant);

  /// Registers carried votes ahead of the tenant's next local admission —
  /// the receiving side of a migration handoff (the shipped checkpoint
  /// tree must already be under checkpoint_root). FailedPrecondition when
  /// the tenant is already resident.
  Status SeedCarriedVotes(const std::string& tenant,
                          TunerService::PendingVotes votes);

  /// Tenant ids with a live shard right now, sorted.
  std::vector<std::string> ResidentTenants() const;

  /// Tenant ids found under checkpoint_root on disk OR in the archive
  /// (what a restarted router can re-admit), sorted. Empty without a
  /// checkpoint_root.
  std::vector<std::string> PersistedTenants() const;

  // --- Cold-tenant archival ----------------------------------------------
  /// Packs every cold tenant's checkpoint directory into the archive and
  /// removes the directory. Cold = on disk under checkpoint_root but not
  /// resident. Two-phase: every pack is durable in a segment BEFORE any
  /// directory is removed, so a crash in between leaves the directory
  /// authoritative (the stale archive entry is dropped at the next
  /// touch). Returns how many tenants were archived; 0 when archival is
  /// disabled.
  StatusOr<size_t> ArchiveColdTenants();

  /// Restores the tenant's checkpoint directory from the archive if (and
  /// only if) it is archived and the directory is missing — the form a
  /// migration source needs before packing the tree for handoff. Ok when
  /// there is nothing to do.
  Status EnsureTenantMaterialized(const std::string& tenant);

  /// The archive tier, or nullptr when archival is disabled. Externally
  /// synchronized: callers must not race routed operations.
  persist::ArchiveStore* archive() { return archive_.get(); }

  RouterMetricsSnapshot Metrics() const;
  /// ExportRouterText(Metrics()) plus per-tenant eviction counters.
  std::string ExportText() const;

 private:
  struct Tenant {
    std::string id;
    std::unique_ptr<TunerService> service;  // null when evicted / failed
    enum class Sched { kIdle, kReady, kRunning } sched = Sched::kIdle;
    /// In-flight routed calls holding `service` outside the router lock;
    /// eviction requires 0.
    int refs = 0;
    uint64_t last_active = 0;  // logical LRU stamp
    uint64_t footprint = 0;    // bytes while resident
    uint64_t footprint_hint = 0;  // last measured snapshot size
    uint64_t evictions = 0;
    /// Carried across incarnations.
    MetricsSnapshot retired;
    std::vector<IndexSet> retired_history;
    TunerService::PendingVotes carried_votes;
    RecoveryStats last_recovery;
    /// Sequence of the first local history entry (set at first admission).
    uint64_t history_start = 0;
    bool history_start_set = false;
    /// Effective QoS class (options default/overrides; SetTenantQos).
    TenantQos qos;
    /// DRR credit in statements. Grows by the quantum at each turn, spent
    /// by draining; residual (< 1) persists while backlogged, reset when
    /// the shard idles (an empty queue earns no credit).
    double deficit = 0.0;
  };

  /// One scheduler turn's inputs, copied under the router lock so the
  /// drain runs lock-free against SetTenantQos.
  struct TurnPlan {
    double deficit = 0.0;
    size_t byte_budget = 0;
  };

  /// Finds or lazily admits the tenant; may evict others to make room.
  /// After Shutdown has begun, admission is refused (a freshly admitted
  /// shard would never be scheduled) unless `admit_while_stopping` — the
  /// override Shutdown itself uses to flush carried votes. Returns null
  /// when admission failed or was refused. Lock held.
  Tenant* GetOrAdmitLocked(const std::string& id,
                           bool admit_while_stopping = false);
  /// Evicts LRU idle shards until the shard about to be admitted (its
  /// estimated `incoming_bytes`) fits under the residency bounds.
  void EnsureCapacityLocked(uint64_t incoming_bytes);
  /// Checkpoint-then-close; requires an idle shard. Lock held.
  bool EvictLocked(Tenant* t);
  /// Re-queues the shard after a drain turn (or idles it, resetting its
  /// deficit). Lock held.
  void FinishTurnLocked(Tenant* t);
  /// The tenant's quantum in statements: max(1, round(weight×max_batch)).
  double QuantumLocked(const Tenant* t) const;
  /// Charges the turn's quantum and snapshots the QoS inputs. Lock held.
  TurnPlan BeginTurnLocked(Tenant* t);
  /// Runs the DRR turn against the running shard (lock NOT held): drains
  /// batches until the deficit is spent or the shard runs dry. Returns
  /// statements drained; the residual deficit is written back in `plan`.
  size_t RunTurn(Tenant* t, TurnPlan* plan);
  /// Writes the residual deficit back and re-queues or idles the shard;
  /// a zero-drain turn is counted and never re-queued. Lock taken inside.
  void EndTurn(Tenant* t, const TurnPlan& plan, size_t drained);
  /// Schedules the shard if it has deliverable work. Lock held.
  void NotifyReadyLocked(Tenant* t);
  void DrainLoop();
  /// Pops the next ready shard, marking it running. Lock held.
  Tenant* NextReadyLocked();

  /// Restores an archived tenant's directory ahead of admission (live
  /// directory wins; the archive entry is then dropped). Lock held.
  Status MaterializeLocked(const std::string& id, const std::string& dir);

  TunerFactory factory_;
  TenantRouterOptions options_;
  std::unique_ptr<WorkerPool> analysis_pool_;  // shared; null when serial
  /// Declared before tenants_: shards Forget() their journal fds into the
  /// batcher when they close, so it must outlive every shard.
  std::unique_ptr<FsyncBatcher> batcher_;
  std::unique_ptr<persist::ArchiveStore> archive_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::deque<Tenant*> ready_;
  std::vector<std::thread> drain_threads_;
  bool started_ = false;
  bool stopping_ = false;
  uint64_t activity_clock_ = 0;
  uint64_t admissions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t resident_count_ = 0;
  uint64_t resident_bytes_ = 0;
  uint64_t empty_turns_ = 0;
  uint64_t tenants_archived_ = 0;
  uint64_t tenants_unarchived_ = 0;
};

}  // namespace wfit::service

#endif  // WFIT_SERVICE_TENANT_ROUTER_H_
