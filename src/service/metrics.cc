#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace wfit::service {

uint64_t MetricsSnapshot::latency_count() const {
  uint64_t n = 0;
  for (uint64_t c : latency_counts) n += c;
  return n;
}

double MetricsSnapshot::mean_latency_us() const {
  uint64_t n = latency_count();
  return n == 0 ? 0.0 : latency_total_us / static_cast<double>(n);
}

double MetricsSnapshot::mean_batch() const {
  return batches == 0
             ? 0.0
             : static_cast<double>(statements_analyzed) /
                   static_cast<double>(batches);
}

double MetricsSnapshot::what_if_cache_hit_rate() const {
  uint64_t probes =
      what_if_cache_hits + what_if_cross_hits + what_if_cache_misses;
  return probes == 0
             ? 0.0
             : static_cast<double>(what_if_cache_hits + what_if_cross_hits) /
                   static_cast<double>(probes);
}

double MetricsSnapshot::what_if_cross_hit_rate() const {
  uint64_t probes =
      what_if_cache_hits + what_if_cross_hits + what_if_cache_misses;
  return probes == 0 ? 0.0
                     : static_cast<double>(what_if_cross_hits) /
                           static_cast<double>(probes);
}

uint64_t MetricsSnapshot::stage_count(obs::Stage stage) const {
  uint64_t n = 0;
  for (uint64_t c : stage_counts[static_cast<int>(stage)]) n += c;
  return n;
}

double MetricsSnapshot::stage_mean_us(obs::Stage stage) const {
  uint64_t n = stage_count(stage);
  return n == 0 ? 0.0
                : stage_total_us[static_cast<int>(stage)] /
                      static_cast<double>(n);
}

double MetricsSnapshot::checkpoint_age_seconds(
    double now_unix_seconds) const {
  if (last_checkpoint_unix_seconds <= 0.0) return 0.0;
  return std::max(0.0, now_unix_seconds - last_checkpoint_unix_seconds);
}

double MetricsSnapshot::LatencyQuantileUpperUs(double q) const {
  uint64_t n = latency_count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * n));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < latency_counts.size(); ++i) {
    seen += latency_counts[i];
    if (seen >= target) {
      return i < kLatencyBucketUpperUs.size()
                 ? kLatencyBucketUpperUs[i]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

double MetricsSnapshot::StageQuantileUpperUs(obs::Stage stage,
                                             double q) const {
  const int idx = static_cast<int>(stage);
  uint64_t n = stage_count(stage);
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * n));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < stage_counts[idx].size(); ++i) {
    seen += stage_counts[idx][i];
    if (seen >= target) {
      return i < kLatencyBucketUpperUs.size()
                 ? kLatencyBucketUpperUs[i]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

double ServiceMetrics::StageQuantileUpperUs(obs::Stage stage,
                                            double q) const {
  const int idx = static_cast<int>(stage);
  if (idx < 0 || idx >= obs::kStageCount) return 0.0;
  std::array<uint64_t, kLatencyBucketCount> counts;
  uint64_t n = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = stage_counts_[idx][i].load(std::memory_order_relaxed);
    n += counts[i];
  }
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * n));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < kLatencyBucketUpperUs.size()
                 ? kLatencyBucketUpperUs[i]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();
}

namespace {

void Counter(std::ostream& os, const char* name, uint64_t v,
             const char* help) {
  os << "# HELP wfit_service_" << name << " " << help << "\n"
     << "# TYPE wfit_service_" << name << " counter\n"
     << "wfit_service_" << name << " " << v << "\n";
}

void Gauge(std::ostream& os, const char* name, uint64_t v, const char* help) {
  os << "# HELP wfit_service_" << name << " " << help << "\n"
     << "# TYPE wfit_service_" << name << " gauge\n"
     << "wfit_service_" << name << " " << v << "\n";
}

}  // namespace

void ExportText(const MetricsSnapshot& s, std::ostream& os) {
  Counter(os, "statements_submitted_total", s.statements_submitted,
          "Statements accepted into the ingest queue");
  Counter(os, "submit_rejected_total", s.submit_rejected,
          "Non-blocking submissions refused because the queue was full");
  Gauge(os, "queue_depth", s.queue_depth, "Current ingest queue depth");
  Gauge(os, "queue_capacity", s.queue_capacity, "Ingest queue capacity");
  Gauge(os, "queue_high_water", s.queue_high_water,
        "Maximum ingest queue depth observed");
  Counter(os, "push_waits_total", s.push_waits,
          "Blocking submissions that waited on backpressure");
  Counter(os, "statements_analyzed_total", s.statements_analyzed,
          "Statements analyzed by the tuner worker");
  Counter(os, "batches_total", s.batches, "Analysis batches drained");
  Gauge(os, "max_batch", s.max_batch, "Largest batch drained");
  Counter(os, "feedback_applied_total", s.feedback_applied,
          "DBA feedback events applied");
  Counter(os, "repartitions_total", s.repartitions,
          "Tuner state repartitions");
  Gauge(os, "analysis_threads", s.analysis_threads,
        "Worker-pool width for intra-statement parallel analysis");
  Counter(os, "what_if_cache_hits_total", s.what_if_cache_hits,
          "What-if probes served from the statement-scoped memo");
  Counter(os, "what_if_cache_misses_total", s.what_if_cache_misses,
          "What-if probes that reached the real optimizer");
  Counter(os, "what_if_cross_hits_total", s.what_if_cross_hits,
          "What-if probes served from the cross-statement template cache");
  Counter(os, "overload_shed_total", s.overload_shed,
          "Statements shed as duplicate templates under overload");
  Counter(os, "overload_sampled_out_total", s.overload_sampled_out,
          "Statements dropped by uniform sampling under overload");
  Counter(os, "overload_transitions_total", s.overload_transitions,
          "Overload-controller epoch transitions journaled");
  Gauge(os, "overload_mode", s.overload_mode,
        "Overload state: 0 Normal, 1 Shedding, 2 Sampling");
  os << "# HELP wfit_service_sample_rate Current uniform sampling rate"
        " (1 outside Sampling)\n"
     << "# TYPE wfit_service_sample_rate gauge\n"
     << "wfit_service_sample_rate " << s.sample_rate << "\n";
  Gauge(os, "recommendation_version", s.snapshot_version,
        "Version of the published recommendation snapshot");
  Counter(os, "checkpoints_written_total", s.checkpoints_written,
          "Durable state snapshots written");
  Counter(os, "checkpoint_failures_total", s.checkpoint_failures,
          "Snapshot writes that failed");
  Gauge(os, "checkpoint_last_seq", s.last_checkpoint_seq,
        "Statements analyzed at the last checkpoint");
  os << "# HELP wfit_service_checkpoint_last_unix_seconds Wall time of the"
        " last checkpoint\n"
     << "# TYPE wfit_service_checkpoint_last_unix_seconds gauge\n"
     << "wfit_service_checkpoint_last_unix_seconds ";
  {
    // Default stream precision (6 digits) would truncate a unix timestamp
    // to ±thousands of seconds; checkpoint-age alerts need it exact.
    std::ostringstream ts;
    ts << std::fixed << std::setprecision(3)
       << s.last_checkpoint_unix_seconds;
    os << ts.str() << "\n";
  }
  Gauge(os, "snapshot_bytes", s.last_snapshot_bytes,
        "Size of the last snapshot written");
  Counter(os, "checkpoints_delta_total", s.checkpoints_delta,
          "Checkpoints written as delta snapshots");
  Gauge(os, "delta_bytes", s.last_delta_bytes,
        "Size of the last delta snapshot written");
  Counter(os, "journal_records_total", s.journal_records,
          "Records in the write-ahead journal");
  Counter(os, "journal_bytes_total", s.journal_bytes,
          "Bytes in the write-ahead journal");
  Counter(os, "journal_syncs_total", s.journal_syncs,
          "fsync batches applied to the journal");
  Counter(os, "journal_failures_total", s.journal_failures,
          "Journal write/fsync failures (nonzero = journaling disabled)");
  Counter(os, "journal_compactions_total", s.journal_compactions,
          "Journal prefix rewrites after a full checkpoint");
  Counter(os, "journal_compacted_bytes_total", s.journal_compacted_bytes,
          "Journal bytes reclaimed by compaction");
  Gauge(os, "recovery_snapshot_loaded", s.recovery_snapshot_loaded,
        "1 if the last startup restored a snapshot");
  Counter(os, "recovery_snapshots_skipped_total",
          s.recovery_snapshots_skipped,
          "Corrupt or mismatched snapshots skipped during recovery");
  Counter(os, "recovery_replayed_statements_total",
          s.recovery_replayed_statements,
          "Journal statements replayed at the last startup");
  Counter(os, "recovery_replayed_feedback_total",
          s.recovery_replayed_feedback,
          "Journal feedback votes replayed at the last startup");

  os << "# HELP wfit_service_analysis_latency_us AnalyzeQuery latency\n"
     << "# TYPE wfit_service_analysis_latency_us histogram\n";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < s.latency_counts.size(); ++i) {
    cumulative += s.latency_counts[i];
    os << "wfit_service_analysis_latency_us_bucket{le=\"";
    if (i < kLatencyBucketUpperUs.size()) {
      os << kLatencyBucketUpperUs[i];
    } else {
      os << "+Inf";
    }
    os << "\"} " << cumulative << "\n";
  }
  os << "wfit_service_analysis_latency_us_sum " << s.latency_total_us << "\n"
     << "wfit_service_analysis_latency_us_count " << cumulative << "\n";

  // Stage-latency histograms: one family, a stage label per series.
  os << "# HELP wfit_service_stage_latency_us Per-stage statement latency"
        " (queue wait, IBG build, what-if probes, checkpoint writes)\n"
     << "# TYPE wfit_service_stage_latency_us histogram\n";
  for (int stage = 0; stage < obs::kStageCount; ++stage) {
    const char* label = obs::StageName(static_cast<obs::Stage>(stage));
    uint64_t stage_cumulative = 0;
    for (size_t i = 0; i < s.stage_counts[stage].size(); ++i) {
      stage_cumulative += s.stage_counts[stage][i];
      os << "wfit_service_stage_latency_us_bucket{stage=\"" << label
         << "\",le=\"";
      if (i < kLatencyBucketUpperUs.size()) {
        os << kLatencyBucketUpperUs[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << stage_cumulative << "\n";
    }
    os << "wfit_service_stage_latency_us_sum{stage=\"" << label << "\"} "
       << s.stage_total_us[stage] << "\n"
       << "wfit_service_stage_latency_us_count{stage=\"" << label << "\"} "
       << stage_cumulative << "\n";
  }
}

std::string ExportText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  ExportText(snapshot, os);
  return os.str();
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AccumulateCounters(MetricsSnapshot* into, const MetricsSnapshot& from) {
  into->statements_submitted += from.statements_submitted;
  into->submit_rejected += from.submit_rejected;
  into->queue_depth += from.queue_depth;
  into->queue_capacity += from.queue_capacity;
  into->queue_high_water =
      std::max(into->queue_high_water, from.queue_high_water);
  into->push_waits += from.push_waits;
  into->statements_analyzed += from.statements_analyzed;
  into->batches += from.batches;
  into->max_batch = std::max(into->max_batch, from.max_batch);
  into->feedback_applied += from.feedback_applied;
  into->repartitions += from.repartitions;
  into->analysis_threads =
      std::max(into->analysis_threads, from.analysis_threads);
  into->what_if_cache_hits += from.what_if_cache_hits;
  into->what_if_cache_misses += from.what_if_cache_misses;
  into->what_if_cross_hits += from.what_if_cross_hits;
  into->overload_shed += from.overload_shed;
  into->overload_sampled_out += from.overload_sampled_out;
  into->overload_transitions += from.overload_transitions;
  // The aggregate reports the most-degraded member: deepest overload mode,
  // lowest sampling rate. Evicted tenants are reset to Normal/1.0 in the
  // carried counters, so retired state never pins the aggregate.
  into->overload_mode = std::max(into->overload_mode, from.overload_mode);
  into->sample_rate = std::min(into->sample_rate, from.sample_rate);
  into->snapshot_version += from.snapshot_version;
  into->checkpoints_written += from.checkpoints_written;
  into->checkpoint_failures += from.checkpoint_failures;
  into->last_checkpoint_seq =
      std::max(into->last_checkpoint_seq, from.last_checkpoint_seq);
  into->last_checkpoint_unix_seconds = std::max(
      into->last_checkpoint_unix_seconds, from.last_checkpoint_unix_seconds);
  into->last_snapshot_bytes += from.last_snapshot_bytes;
  into->checkpoints_delta += from.checkpoints_delta;
  into->last_delta_bytes += from.last_delta_bytes;
  into->journal_records += from.journal_records;
  into->journal_bytes += from.journal_bytes;
  into->journal_syncs += from.journal_syncs;
  into->journal_failures += from.journal_failures;
  into->journal_compactions += from.journal_compactions;
  into->journal_compacted_bytes += from.journal_compacted_bytes;
  into->recovery_snapshot_loaded += from.recovery_snapshot_loaded;
  into->recovery_snapshots_skipped += from.recovery_snapshots_skipped;
  into->recovery_replayed_statements += from.recovery_replayed_statements;
  into->recovery_replayed_feedback += from.recovery_replayed_feedback;
  for (size_t i = 0; i < into->latency_counts.size(); ++i) {
    into->latency_counts[i] += from.latency_counts[i];
  }
  into->latency_total_us += from.latency_total_us;
  for (int stage = 0; stage < obs::kStageCount; ++stage) {
    for (size_t i = 0; i < into->stage_counts[stage].size(); ++i) {
      into->stage_counts[stage][i] += from.stage_counts[stage][i];
    }
    into->stage_total_us[stage] += from.stage_total_us[stage];
  }
}

namespace {

/// One labelled family: HELP/TYPE header, then one sample per tenant drawn
/// through `value`.
template <typename ValueFn>
void TenantFamily(
    const std::vector<std::pair<std::string, MetricsSnapshot>>& tenants,
    std::ostream& os, const char* name, const char* type, const char* help,
    ValueFn value) {
  os << "# HELP wfit_tenant_" << name << " " << help << "\n"
     << "# TYPE wfit_tenant_" << name << " " << type << "\n";
  for (const auto& [id, snapshot] : tenants) {
    os << "wfit_tenant_" << name << "{tenant=\"" << EscapeLabelValue(id)
       << "\"} " << value(snapshot) << "\n";
  }
}

}  // namespace

void ExportTenantText(
    const std::vector<std::pair<std::string, MetricsSnapshot>>& tenants,
    std::ostream& os) {
  auto counter = [&](const char* name, const char* help,
                     uint64_t MetricsSnapshot::* field) {
    TenantFamily(tenants, os, name, "counter", help,
                 [field](const MetricsSnapshot& s) { return s.*field; });
  };
  auto gauge = [&](const char* name, const char* help,
                   uint64_t MetricsSnapshot::* field) {
    TenantFamily(tenants, os, name, "gauge", help,
                 [field](const MetricsSnapshot& s) { return s.*field; });
  };
  counter("stmts_total", "Statements analyzed for this tenant",
          &MetricsSnapshot::statements_analyzed);
  counter("stmts_submitted_total", "Statements accepted for this tenant",
          &MetricsSnapshot::statements_submitted);
  counter("submit_rejected_total",
          "Non-blocking submissions refused (tenant queue full)",
          &MetricsSnapshot::submit_rejected);
  counter("batches_total", "Analysis batches drained for this tenant",
          &MetricsSnapshot::batches);
  counter("feedback_applied_total", "DBA feedback events applied",
          &MetricsSnapshot::feedback_applied);
  counter("repartitions_total", "Tuner state repartitions",
          &MetricsSnapshot::repartitions);
  counter("what_if_cache_hits_total",
          "What-if probes served from the statement-scoped memo",
          &MetricsSnapshot::what_if_cache_hits);
  counter("what_if_cache_misses_total",
          "What-if probes that reached the real optimizer",
          &MetricsSnapshot::what_if_cache_misses);
  counter("what_if_cross_hits_total",
          "What-if probes served from the cross-statement template cache",
          &MetricsSnapshot::what_if_cross_hits);
  counter("overload_shed_total",
          "Statements shed as duplicate templates under overload",
          &MetricsSnapshot::overload_shed);
  counter("overload_sampled_out_total",
          "Statements dropped by uniform sampling under overload",
          &MetricsSnapshot::overload_sampled_out);
  counter("overload_transitions_total",
          "Overload-controller epoch transitions journaled",
          &MetricsSnapshot::overload_transitions);
  gauge("overload_mode", "Overload state: 0 Normal, 1 Shedding, 2 Sampling",
        &MetricsSnapshot::overload_mode);
  TenantFamily(tenants, os, "sample_rate", "gauge",
               "Current uniform sampling rate (1 outside Sampling)",
               [](const MetricsSnapshot& s) { return s.sample_rate; });
  counter("checkpoints_written_total", "Durable state snapshots written",
          &MetricsSnapshot::checkpoints_written);
  counter("journal_records_total", "Records in the tenant's WAL",
          &MetricsSnapshot::journal_records);
  gauge("queue_depth", "Current tenant ingest queue depth",
        &MetricsSnapshot::queue_depth);
  gauge("queue_capacity", "Tenant ingest queue capacity",
        &MetricsSnapshot::queue_capacity);
  gauge("snapshot_bytes", "Size of the tenant's last state snapshot",
        &MetricsSnapshot::last_snapshot_bytes);

  // Per-tenant analysis latency histogram: bucket series per tenant, then
  // the _sum/_count samples, all under one family header.
  os << "# HELP wfit_tenant_analysis_latency_us AnalyzeQuery latency\n"
     << "# TYPE wfit_tenant_analysis_latency_us histogram\n";
  for (const auto& [id, s] : tenants) {
    const std::string label = EscapeLabelValue(id);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < s.latency_counts.size(); ++i) {
      cumulative += s.latency_counts[i];
      os << "wfit_tenant_analysis_latency_us_bucket{tenant=\"" << label
         << "\",le=\"";
      if (i < kLatencyBucketUpperUs.size()) {
        os << kLatencyBucketUpperUs[i];
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << "wfit_tenant_analysis_latency_us_sum{tenant=\"" << label << "\"} "
       << s.latency_total_us << "\n"
       << "wfit_tenant_analysis_latency_us_count{tenant=\"" << label
       << "\"} " << cumulative << "\n";
  }

  // Per-tenant, per-stage latency histograms (tenant + stage labels).
  os << "# HELP wfit_tenant_stage_latency_us Per-stage statement latency\n"
     << "# TYPE wfit_tenant_stage_latency_us histogram\n";
  for (const auto& [id, s] : tenants) {
    const std::string label = EscapeLabelValue(id);
    for (int stage = 0; stage < obs::kStageCount; ++stage) {
      const char* stage_name = obs::StageName(static_cast<obs::Stage>(stage));
      uint64_t cumulative = 0;
      for (size_t i = 0; i < s.stage_counts[stage].size(); ++i) {
        cumulative += s.stage_counts[stage][i];
        os << "wfit_tenant_stage_latency_us_bucket{tenant=\"" << label
           << "\",stage=\"" << stage_name << "\",le=\"";
        if (i < kLatencyBucketUpperUs.size()) {
          os << kLatencyBucketUpperUs[i];
        } else {
          os << "+Inf";
        }
        os << "\"} " << cumulative << "\n";
      }
      os << "wfit_tenant_stage_latency_us_sum{tenant=\"" << label
         << "\",stage=\"" << stage_name << "\"} " << s.stage_total_us[stage]
         << "\n"
         << "wfit_tenant_stage_latency_us_count{tenant=\"" << label
         << "\",stage=\"" << stage_name << "\"} " << cumulative << "\n";
    }
  }
}

void ServiceMetrics::OnBatch(uint64_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (size > prev &&
         !max_batch_.compare_exchange_weak(prev, size,
                                           std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::OnAnalyzed(double latency_us) {
  analyzed_.fetch_add(1, std::memory_order_relaxed);
  size_t bucket = kLatencyBucketUpperUs.size();
  for (size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (latency_us <= kLatencyBucketUpperUs[i]) {
      bucket = i;
      break;
    }
  }
  latency_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_total_ns_.fetch_add(static_cast<uint64_t>(latency_us * 1000.0),
                              std::memory_order_relaxed);
}

void ServiceMetrics::RecordStage(obs::Stage stage, uint64_t ns) {
  const int idx = static_cast<int>(stage);
  if (idx < 0 || idx >= obs::kStageCount) return;
  const double us = static_cast<double>(ns) / 1000.0;
  size_t bucket = kLatencyBucketUpperUs.size();
  for (size_t i = 0; i < kLatencyBucketUpperUs.size(); ++i) {
    if (us <= kLatencyBucketUpperUs[i]) {
      bucket = i;
      break;
    }
  }
  stage_counts_[idx][bucket].fetch_add(1, std::memory_order_relaxed);
  stage_total_ns_[idx].fetch_add(ns, std::memory_order_relaxed);
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.statements_submitted = submitted_.load(std::memory_order_relaxed);
  s.submit_rejected = rejected_.load(std::memory_order_relaxed);
  s.statements_analyzed = analyzed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.feedback_applied = feedback_.load(std::memory_order_relaxed);
  s.repartitions = repartitions_.load(std::memory_order_relaxed);
  s.what_if_cache_hits = wi_hits_.load(std::memory_order_relaxed);
  s.what_if_cache_misses = wi_misses_.load(std::memory_order_relaxed);
  s.what_if_cross_hits = wi_cross_hits_.load(std::memory_order_relaxed);
  s.overload_shed = shed_.load(std::memory_order_relaxed);
  s.overload_sampled_out = sampled_out_.load(std::memory_order_relaxed);
  s.overload_transitions = transitions_.load(std::memory_order_relaxed);
  s.overload_mode = overload_mode_.load(std::memory_order_relaxed);
  s.sample_rate =
      static_cast<double>(sample_rate_ppm_.load(std::memory_order_relaxed)) /
      1e6;
  s.analysis_threads = analysis_threads_.load(std::memory_order_relaxed);
  s.snapshot_version = version_.load(std::memory_order_relaxed);
  s.checkpoints_written = checkpoints_.load(std::memory_order_relaxed);
  s.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  s.last_checkpoint_seq = last_checkpoint_seq_.load(std::memory_order_relaxed);
  s.last_checkpoint_unix_seconds =
      static_cast<double>(
          last_checkpoint_unix_ms_.load(std::memory_order_relaxed)) /
      1000.0;
  s.last_snapshot_bytes = last_snapshot_bytes_.load(std::memory_order_relaxed);
  s.checkpoints_delta = checkpoints_delta_.load(std::memory_order_relaxed);
  s.last_delta_bytes = last_delta_bytes_.load(std::memory_order_relaxed);
  s.journal_records = journal_records_.load(std::memory_order_relaxed);
  s.journal_bytes = journal_bytes_.load(std::memory_order_relaxed);
  s.journal_syncs = journal_syncs_.load(std::memory_order_relaxed);
  s.journal_failures = journal_failures_.load(std::memory_order_relaxed);
  s.journal_compactions =
      journal_compactions_.load(std::memory_order_relaxed);
  s.journal_compacted_bytes =
      journal_compacted_bytes_.load(std::memory_order_relaxed);
  s.recovery_snapshot_loaded =
      recovery_loaded_.load(std::memory_order_relaxed);
  s.recovery_snapshots_skipped =
      recovery_skipped_.load(std::memory_order_relaxed);
  s.recovery_replayed_statements =
      recovery_statements_.load(std::memory_order_relaxed);
  s.recovery_replayed_feedback =
      recovery_feedback_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < s.latency_counts.size(); ++i) {
    s.latency_counts[i] = latency_counts_[i].load(std::memory_order_relaxed);
  }
  s.latency_total_us =
      static_cast<double>(latency_total_ns_.load(std::memory_order_relaxed)) /
      1000.0;
  for (int stage = 0; stage < obs::kStageCount; ++stage) {
    for (size_t i = 0; i < s.stage_counts[stage].size(); ++i) {
      s.stage_counts[stage][i] =
          stage_counts_[stage][i].load(std::memory_order_relaxed);
    }
    s.stage_total_us[stage] =
        static_cast<double>(
            stage_total_ns_[stage].load(std::memory_order_relaxed)) /
        1000.0;
  }
  return s;
}

}  // namespace wfit::service
