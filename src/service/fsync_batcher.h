// Group commit for journal fsyncs: tenant shards on one node each own a
// journal, and at steady state every analysis batch ends with an fsync —
// thousands of tiny fdatasyncs per second across the fleet, almost all of
// them against the same drive. The batcher coalesces them: shards hand
// their (already flushed) descriptors to a shared drain thread, which
// makes every descriptor dirty at the start of a window durable with one
// pass — one fdatasync per distinct descriptor, or a single syncfs(2)
// when enough descriptors share the window.
//
// Two durability grades:
//   - SyncRequired(fd): blocks until the fd is durable. Same guarantee as
//     JournalWriter::Sync(), minus the per-caller fsync — concurrent
//     requireds in one window share a single pass.
//   - SyncDeferred(fd): marks the fd dirty and returns; the next window
//     makes it durable (~window_us later). For tail syncs whose loss a
//     crash already tolerates (the records replay as fresh intake).
//
// Lifetime: Forget(fd) must be called before an fd is closed — a batched
// sync against a recycled descriptor number would silently "succeed"
// against the wrong file. The batcher never owns descriptors.
//
// Error handling: a failed fsync poisons every waiter of that window (the
// caller treats it like its own Sync() failing — journal lost, tenant
// fails over). Deferred failures surface on the NEXT required sync of the
// same fd, which is before any new analysis depends on the deferred
// records' durability.
#ifndef WFIT_SERVICE_FSYNC_BATCHER_H_
#define WFIT_SERVICE_FSYNC_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/status.h"

namespace wfit::service {

class FsyncBatcher {
 public:
  struct Options {
    /// Drain cadence: dirty descriptors wait at most this long. Also the
    /// upper bound a SyncRequired caller waits for companions to pile in.
    uint64_t window_us = 200;
    /// With at least this many distinct dirty descriptors in one window,
    /// Linux builds issue one syncfs(2) instead of per-fd fdatasync.
    uint64_t syncfs_min_fds = 4;
  };

  struct Stats {
    uint64_t sync_calls = 0;    // kernel flush syscalls issued
    uint64_t cycles = 0;        // windows drained
    uint64_t required = 0;      // SyncRequired calls served
    uint64_t deferred = 0;      // SyncDeferred calls accepted
    uint64_t syncfs_calls = 0;  // cycles that used syncfs
  };

  FsyncBatcher() : FsyncBatcher(Options()) {}
  explicit FsyncBatcher(Options options);
  ~FsyncBatcher();

  FsyncBatcher(const FsyncBatcher&) = delete;
  FsyncBatcher& operator=(const FsyncBatcher&) = delete;

  /// Blocks until everything written to `fd` before the call is durable.
  /// The caller must have flushed its userspace buffers first
  /// (JournalWriter::Flush()).
  Status SyncRequired(int fd);

  /// Marks `fd` dirty for the next drain window and returns immediately.
  void SyncDeferred(int fd);

  /// Drops any pending state for `fd`. MUST precede closing the fd.
  /// Pending deferred durability for it is abandoned (callers only defer
  /// syncs whose loss recovery tolerates).
  void Forget(int fd);

  Stats GetStats() const;

 private:
  void DrainLoop();
  /// Syncs `fds` outside the lock; returns the first failure.
  Status SyncAll(const std::set<int>& fds);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // wakes the drain thread
  std::condition_variable done_cv_;   // wakes required-sync waiters
  std::set<int> dirty_;
  /// The generation currently being synced outside the lock. Only the
  /// drain thread writes it (under the lock); Forget reads it to avoid
  /// closing a descriptor mid-sync.
  std::set<int> in_flight_;
  /// Window generation counter: a waiter is served once the generation it
  /// enqueued under has been drained.
  uint64_t drained_gen_ = 0;
  uint64_t queued_gen_ = 1;
  /// Sticky per-generation failure for waiter poisoning.
  std::map<uint64_t, Status> failed_gens_;
  uint64_t waiters_ = 0;
  Stats stats_;
  bool stop_ = false;
  std::thread drain_;
};

}  // namespace wfit::service

#endif  // WFIT_SERVICE_FSYNC_BATCHER_H_
