#include "service/fsync_batcher.h"

#include <unistd.h>

#include <chrono>
#include <string>
#include <utility>

namespace wfit::service {

FsyncBatcher::FsyncBatcher(Options options) : options_(options) {
  drain_ = std::thread([this] { DrainLoop(); });
}

FsyncBatcher::~FsyncBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  drain_.join();
}

Status FsyncBatcher::SyncRequired(int fd) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return Status::Internal("fsync batcher stopped");
  dirty_.insert(fd);
  // The drain snapshots ALL dirty fds into the generation it stamps, so
  // this call is served exactly when `my_gen` has been drained.
  const uint64_t my_gen = queued_gen_;
  ++waiters_;
  ++stats_.required;
  work_cv_.notify_one();
  done_cv_.wait(lock, [&] { return drained_gen_ >= my_gen || stop_; });
  Status result = Status::Ok();
  if (drained_gen_ < my_gen) {
    result = Status::Internal("fsync batcher stopped with syncs pending");
  } else if (auto it = failed_gens_.find(my_gen); it != failed_gens_.end()) {
    result = it->second;
  }
  if (--waiters_ == 0) failed_gens_.clear();
  return result;
}

void FsyncBatcher::SyncDeferred(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;
  dirty_.insert(fd);
  ++stats_.deferred;
  work_cv_.notify_one();
}

void FsyncBatcher::Forget(int fd) {
  std::unique_lock<std::mutex> lock(mu_);
  dirty_.erase(fd);
  // A drain may have the fd snapshotted right now; closing it during that
  // sync would race a recycled descriptor number. Wait the cycle out.
  done_cv_.wait(lock, [&] { return in_flight_.count(fd) == 0 || stop_; });
}

FsyncBatcher::Stats FsyncBatcher::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FsyncBatcher::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (dirty_.empty()) {
      work_cv_.wait(lock, [&] { return stop_ || !dirty_.empty(); });
      continue;
    }
    // Let the window fill: everyone who arrives during this nap shares
    // the single pass below.
    work_cv_.wait_for(lock, std::chrono::microseconds(options_.window_us),
                      [&] { return stop_; });
    if (stop_) break;
    const uint64_t gen = queued_gen_++;
    in_flight_ = std::move(dirty_);
    dirty_.clear();
    lock.unlock();
    Status st = SyncAll(in_flight_);
    lock.lock();
    drained_gen_ = gen;
    ++stats_.cycles;
    if (!st.ok() && waiters_ > 0) failed_gens_[gen] = st;
    in_flight_.clear();
    done_cv_.notify_all();
  }
  // Unblock everyone; pending syncs report failure via the stop branch.
  done_cv_.notify_all();
}

Status FsyncBatcher::SyncAll(const std::set<int>& fds) {
  if (fds.empty()) return Status::Ok();
#ifdef __linux__
  if (fds.size() >= options_.syncfs_min_fds) {
    // One filesystem-wide barrier beats N per-file ones once enough
    // journals share the window (they share the checkpoint root's drive).
    if (::syncfs(*fds.begin()) != 0) {
      return Status::Internal("syncfs failed");
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sync_calls;
    ++stats_.syncfs_calls;
    return Status::Ok();
  }
#endif
  Status result = Status::Ok();
  uint64_t calls = 0;
  for (int fd : fds) {
#ifdef __linux__
    const int rc = ::fdatasync(fd);
#else
    const int rc = ::fsync(fd);
#endif
    ++calls;
    if (rc != 0 && result.ok()) {
      result = Status::Internal("fdatasync failed for fd " +
                                std::to_string(fd));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.sync_calls += calls;
  return result;
}

}  // namespace wfit::service
