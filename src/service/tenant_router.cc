#include "service/tenant_router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/check.h"
#include "obs/log.h"
#include "persist/tenant_tree.h"

namespace wfit::service {

namespace {

void RouterCounter(std::ostream& os, const char* name, uint64_t v,
                   const char* help) {
  os << "# HELP wfit_router_" << name << " " << help << "\n"
     << "# TYPE wfit_router_" << name << " counter\n"
     << "wfit_router_" << name << " " << v << "\n";
}

void RouterGauge(std::ostream& os, const char* name, uint64_t v,
                 const char* help) {
  os << "# HELP wfit_router_" << name << " " << help << "\n"
     << "# TYPE wfit_router_" << name << " gauge\n"
     << "wfit_router_" << name << " " << v << "\n";
}

/// One per-tenant labelled gauge family under the wfit_router_qos_ prefix.
template <typename ValueFn>
void QosFamily(const RouterMetricsSnapshot& s, std::ostream& os,
               const char* name, const char* help, ValueFn value) {
  os << "# HELP wfit_router_qos_" << name << " " << help << "\n"
     << "# TYPE wfit_router_qos_" << name << " gauge\n";
  for (const TenantMetricsEntry& t : s.tenants) {
    os << "wfit_router_qos_" << name << "{tenant=\""
       << EscapeLabelValue(t.id) << "\"} " << value(t) << "\n";
  }
}

/// FNV-1a of the tenant id: the default per-tenant sampling seed, so a
/// tenant's shed/sample decisions are reproducible from its id alone.
uint64_t TenantSampleSeed(const std::string& id) {
  uint64_t h = 1469598103934665603ull;
  for (char c : id) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

void ExportRouterText(const RouterMetricsSnapshot& s, std::ostream& os) {
  // Aggregate rollup first (the familiar wfit_service_* families), then
  // the labelled per-tenant series, then router-level families.
  ExportText(s.aggregate, os);
  std::vector<std::pair<std::string, MetricsSnapshot>> tenants;
  tenants.reserve(s.tenants.size());
  for (const TenantMetricsEntry& t : s.tenants) {
    tenants.emplace_back(t.id, t.service);
  }
  ExportTenantText(tenants, os);
  os << "# HELP wfit_tenant_evictions_total Checkpoint-then-close evictions"
        " of this tenant's shard\n"
     << "# TYPE wfit_tenant_evictions_total counter\n";
  for (const TenantMetricsEntry& t : s.tenants) {
    os << "wfit_tenant_evictions_total{tenant=\"" << EscapeLabelValue(t.id)
       << "\"} " << t.evictions << "\n";
  }
  os << "# HELP wfit_tenant_resident 1 when the tenant's shard is live\n"
     << "# TYPE wfit_tenant_resident gauge\n";
  for (const TenantMetricsEntry& t : s.tenants) {
    os << "wfit_tenant_resident{tenant=\"" << EscapeLabelValue(t.id)
       << "\"} " << (t.resident ? 1 : 0) << "\n";
  }
  RouterGauge(os, "tenants_known", s.tenants_known,
              "Tenants ever routed through this process");
  RouterGauge(os, "tenants_resident", s.tenants_resident,
              "Tenants with a live shard");
  RouterCounter(os, "admissions_total", s.admissions,
                "Shard creations, including re-admissions after eviction");
  RouterCounter(os, "evictions_total", s.evictions,
                "Checkpoint-then-close shard evictions");
  RouterGauge(os, "resident_footprint_bytes", s.resident_footprint_bytes,
              "Estimated aggregate footprint of resident shards");
  RouterCounter(os, "empty_turns_total", s.empty_turns,
                "Scheduler turns that drained nothing (shard idled, not "
                "re-queued)");
  RouterCounter(os, "tenants_archived_total", s.tenants_archived,
                "Cold tenant checkpoint trees packed into the archive");
  RouterCounter(os, "tenants_unarchived_total", s.tenants_unarchived,
                "Archived tenant trees restored on re-touch");
  RouterGauge(os, "archive_segments", s.archive_segments,
              "Segment files in the cold-tenant archive");
  RouterGauge(os, "archive_live_bytes", s.archive_live_bytes,
              "Bytes of live (reachable) entries in the archive");
  RouterGauge(os, "archive_segment_bytes", s.archive_segment_bytes,
              "Total bytes of archive segment files, dead entries included");
  RouterCounter(os, "group_commit_cycles_total", s.group_commit_cycles,
                "Drain windows the shared fsync batcher completed");
  RouterCounter(os, "group_commit_sync_calls_total",
                s.group_commit_sync_calls,
                "Kernel flush syscalls the batcher issued");
  RouterCounter(os, "group_commit_required_total", s.group_commit_required,
                "Blocking journal syncs served through the batcher");
  RouterCounter(os, "group_commit_deferred_total", s.group_commit_deferred,
                "Deferred journal syncs accepted by the batcher");
  RouterCounter(os, "group_commit_syncfs_total", s.group_commit_syncfs,
                "Batcher windows that used one syncfs for all journals");
  QosFamily(s, os, "weight", "DRR weight of the tenant's QoS class",
            [](const TenantMetricsEntry& t) { return t.qos_weight; });
  QosFamily(s, os, "byte_budget",
            "Per-batch byte budget of the tenant's QoS class (0 = none)",
            [](const TenantMetricsEntry& t) { return t.qos_byte_budget; });
  QosFamily(s, os, "deficit",
            "Unspent DRR credit (statements) of the tenant's shard",
            [](const TenantMetricsEntry& t) { return t.drr_deficit; });
}

std::string ExportRouterText(const RouterMetricsSnapshot& snapshot) {
  std::ostringstream os;
  ExportRouterText(snapshot, os);
  return os.str();
}

TenantRouter::TenantRouter(TunerFactory factory, TenantRouterOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  WFIT_CHECK(factory_ != nullptr, "TenantRouter requires a tuner factory");
  WFIT_CHECK(options_.shard.checkpoint_dir.empty(),
             "per-tenant checkpoint directories are derived from "
             "checkpoint_root; shard.checkpoint_dir must be empty");
  WFIT_CHECK(options_.shard.fsync_batcher == nullptr,
             "the shard template's fsync_batcher is owned by the router; "
             "set TenantRouterOptions::group_commit instead");
  if (options_.group_commit && !options_.checkpoint_root.empty()) {
    batcher_ = std::make_unique<FsyncBatcher>(options_.group_commit_options);
  }
  if (options_.archive_cold_tenants && !options_.checkpoint_root.empty()) {
    persist::ArchiveStore::Options aopts;
    aopts.max_segment_bytes = options_.archive_segment_bytes;
    auto opened = persist::ArchiveStore::Open(options_.checkpoint_root,
                                              aopts);
    if (opened.ok()) {
      archive_ = std::make_unique<persist::ArchiveStore>(
          std::move(opened).value());
    } else {
      // A damaged archive must not take routing down: per-tenant trees
      // still work, only the cold tier is unavailable.
      obs::Log(obs::LogLevel::kError, "router.archive_open_failed")
          .Str("error", opened.status().ToString());
    }
  }
}

TenantRouter::~TenantRouter() { Shutdown(); }

void TenantRouter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  WFIT_CHECK(!started_, "TenantRouter::Start called twice");
  started_ = true;
  const size_t analysis = options_.analysis_threads == 0
                              ? WorkerPool::DefaultThreads()
                              : options_.analysis_threads;
  if (analysis > 1) {
    // Draining threads participate in every ParallelFor, so a pool of
    // analysis - 1 helpers yields `analysis` concurrent workers per
    // statement — shared by every shard.
    analysis_pool_ = std::make_unique<WorkerPool>(analysis - 1);
  }
  drain_threads_.reserve(options_.drain_threads);
  for (size_t i = 0; i < options_.drain_threads; ++i) {
    drain_threads_.emplace_back([this] { DrainLoop(); });
  }
}

void TenantRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& t : drain_threads_) t.join();
  drain_threads_.clear();
  std::unique_lock<std::mutex> lock(mu_);
  // An embedder-driven DrainOne turn (drain_threads = 0) may still be
  // inside ProcessBatch; wait it out so each shard's inline drain below is
  // properly serialized. Producers racing Shutdown see closed queues.
  ready_cv_.wait(lock, [&] {
    for (const auto& [id, tenant] : tenants_) {
      if (tenant->sched == Tenant::Sched::kRunning) return false;
    }
    return true;
  });
  // An evicted tenant may hold votes that were keyed past its eviction
  // point; a dedicated service's Shutdown applies ALL pending feedback,
  // so flush them by re-admitting (the carried votes re-register during
  // admission and the inline Shutdown below applies + checkpoints them).
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service == nullptr && !tenant->carried_votes.empty()) {
      GetOrAdmitLocked(id, /*admit_while_stopping=*/true);
    }
  }
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr) {
      tenant->service->Shutdown();
    }
  }
}

TenantRouter::Tenant* TenantRouter::GetOrAdmitLocked(
    const std::string& id, bool admit_while_stopping) {
  WFIT_CHECK(started_, "TenantRouter used before Start()");
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    if (stopping_ && !admit_while_stopping) return nullptr;
    auto tenant = std::make_unique<Tenant>();
    tenant->id = id;
    auto qos_it = options_.tenant_qos.find(id);
    tenant->qos = qos_it != options_.tenant_qos.end() ? qos_it->second
                                                      : options_.default_qos;
    it = tenants_.emplace(id, std::move(tenant)).first;
  }
  Tenant* t = it->second.get();
  t->last_active = ++activity_clock_;
  if (t->service != nullptr) return t;
  // A shard admitted after Shutdown began would never be scheduled.
  if (stopping_ && !admit_while_stopping) return nullptr;

  // Lazy (re-)admission: make room, build the tuner, recover the tenant's
  // checkpoint directory, and re-register votes carried over the eviction.
  const uint64_t incoming_bytes =
      std::max(t->footprint_hint, options_.min_tenant_footprint_bytes);
  EnsureCapacityLocked(incoming_bytes);
  TenantTuner made = factory_(id);
  if (made.tuner == nullptr) {
    obs::Log(obs::LogLevel::kError, "router.factory_failed").Str("tenant", id);
    return nullptr;
  }
  TunerServiceOptions shard_options = options_.shard;
  // QoS → shard service configuration. The sampling seed is derived from
  // the tenant id (unless the template pinned one), so a tenant's overload
  // decisions are reproducible across incarnations and nodes.
  if (shard_options.overload.sample_seed == 0) {
    shard_options.overload.sample_seed = TenantSampleSeed(id);
  }
  if (t->qos.sample_floor > 0.0) {
    shard_options.overload.sample_floor = t->qos.sample_floor;
  }
  if (t->qos.p99_budget_ms > 0.0) {
    shard_options.dynamic_batching = true;
    shard_options.batch_p99_budget_ms = t->qos.p99_budget_ms;
  }
  if (!options_.checkpoint_root.empty()) {
    shard_options.checkpoint_dir =
        persist::TenantCheckpointDir(options_.checkpoint_root, id);
    WFIT_CHECK(made.pool != nullptr,
               "a checkpointing TenantRouter requires the factory to "
               "supply the tenant's index pool");
    shard_options.fsync_batcher = batcher_.get();
    // An archived tenant's tree comes back out of the cold tier before
    // recovery looks at the directory. Failing admission (rather than
    // starting cold) keeps a damaged archive from silently forking the
    // tenant's trajectory at sequence 0.
    Status materialized =
        MaterializeLocked(id, shard_options.checkpoint_dir);
    if (!materialized.ok()) {
      obs::Log(obs::LogLevel::kError, "router.unarchive_failed")
          .Str("tenant", id)
          .Str("error", materialized.ToString());
      return nullptr;
    }
  }
  RecoveryStats recovery;
  auto opened = TunerService::Open(std::move(made.tuner), made.pool,
                                   std::move(shard_options), &recovery);
  if (!opened.ok()) {
    obs::Log(obs::LogLevel::kError, "router.admission_failed")
        .Str("tenant", id)
        .Str("error", opened.status().ToString());
    return nullptr;
  }
  t->service = std::move(*opened);
  t->last_recovery = recovery;
  if (!t->history_start_set) {
    t->history_start =
        recovery.snapshot_loaded ? recovery.snapshot_analyzed : 0;
    t->history_start_set = true;
  }
  t->service->StartDetached(analysis_pool_.get());
  for (auto& [after_seq, votes] : t->carried_votes) {
    t->service->FeedbackAfter(after_seq, votes.first, votes.second);
  }
  if (options_.repin) {
    // Votes lost to a crash have boundaries >= the recovery point; they
    // must be pinned before any requeued intake is scheduled below, or
    // they would apply late. Votes the eviction path carried over (clean
    // evictions and migration handoffs) were just re-registered above —
    // the hook re-reporting one of those must not register it twice.
    for (PinnedVote& vote : options_.repin(id, recovery)) {
      if (vote.after_seq < recovery.analyzed) continue;
      auto [begin, end] = t->carried_votes.equal_range(vote.after_seq);
      bool carried = false;
      for (auto it2 = begin; it2 != end; ++it2) {
        if (it2->second.first == vote.f_plus &&
            it2->second.second == vote.f_minus) {
          carried = true;
          break;
        }
      }
      if (!carried) {
        t->service->FeedbackAfter(vote.after_seq, std::move(vote.f_plus),
                                  std::move(vote.f_minus));
      }
    }
  }
  t->carried_votes.clear();
  t->footprint = incoming_bytes;
  resident_bytes_ += t->footprint;
  ++resident_count_;
  ++admissions_;
  // Intake requeued by recovery is deliverable right away; schedule it.
  NotifyReadyLocked(t);
  return t;
}

void TenantRouter::EnsureCapacityLocked(uint64_t incoming_bytes) {
  // Best-effort: only idle shards can be closed losslessly, and without a
  // checkpoint root eviction would lose state, so the bound is advisory
  // when every resident shard is busy. During Shutdown's carried-vote
  // flush the bound is moot (everything closes in a moment anyway) and
  // evicting mid-iteration would churn.
  if (options_.checkpoint_root.empty() || stopping_) return;
  auto over = [&] {
    bool count_over = options_.max_resident_tenants != 0 &&
                      resident_count_ + 1 > options_.max_resident_tenants;
    bool bytes_over = options_.max_resident_bytes != 0 &&
                      resident_bytes_ + incoming_bytes >
                          options_.max_resident_bytes;
    return count_over || bytes_over;
  };
  while (over()) {
    Tenant* victim = nullptr;
    for (auto& [id, tenant] : tenants_) {
      Tenant* t = tenant.get();
      if (t->service == nullptr || t->sched != Tenant::Sched::kIdle ||
          t->refs != 0 || t->service->QueueDepth() != 0) {
        continue;
      }
      if (victim == nullptr || t->last_active < victim->last_active) {
        victim = t;
      }
    }
    if (victim == nullptr || !EvictLocked(victim)) break;
  }
}

bool TenantRouter::EvictLocked(Tenant* t) {
  if (t->service == nullptr || t->sched != Tenant::Sched::kIdle ||
      t->refs != 0 || t->service->QueueDepth() != 0 ||
      options_.checkpoint_root.empty()) {
    return false;
  }
  // Checkpoint-then-close: due feedback applies and is journaled, a final
  // snapshot seals the state, and future-keyed votes come back to us for
  // the next incarnation.
  t->carried_votes = t->service->CloseForEviction();
  MetricsSnapshot metrics = t->service->Metrics();
  t->footprint_hint = std::max(metrics.last_snapshot_bytes,
                               options_.min_tenant_footprint_bytes);
  // Only counters carry across incarnations. Instantaneous gauges
  // (queue depth/capacity, snapshot size, publication version) describe
  // the live shard; folding them into `retired` would inflate the
  // tenant's series by one capacity/snapshot per eviction cycle.
  metrics.queue_depth = 0;
  metrics.queue_capacity = 0;
  metrics.last_snapshot_bytes = 0;
  metrics.snapshot_version = 0;
  // Overload state describes the live shard too; a retired Shedding/
  // Sampling reading must not pin the tenant's (max/min-merged) gauges.
  metrics.overload_mode = 0;
  metrics.sample_rate = 1.0;
  AccumulateCounters(&t->retired, metrics);
  if (options_.shard.record_history) {
    std::vector<IndexSet> history = t->service->History();
    t->retired_history.insert(t->retired_history.end(), history.begin(),
                              history.end());
  }
  t->service.reset();
  resident_bytes_ -= t->footprint;
  t->footprint = 0;
  --resident_count_;
  ++t->evictions;
  ++evictions_;
  return true;
}

void TenantRouter::NotifyReadyLocked(Tenant* t) {
  if (t->sched == Tenant::Sched::kIdle && t->service != nullptr &&
      t->service->HasDeliverableWork()) {
    t->sched = Tenant::Sched::kReady;
    ready_.push_back(t);
    ready_cv_.notify_one();
  }
}

void TenantRouter::FinishTurnLocked(Tenant* t) {
  t->last_active = ++activity_clock_;
  if (t->service != nullptr && t->service->HasDeliverableWork()) {
    // Tail of the ready ring: deficit round-robin across backlogged
    // shards — residual credit persists until the shard's next turn.
    t->sched = Tenant::Sched::kReady;
    ready_.push_back(t);
  } else {
    t->sched = Tenant::Sched::kIdle;
    // An empty queue earns no credit (the DRR idleness rule): a tenant
    // cannot bank scheduling share while it has nothing to drain.
    t->deficit = 0.0;
  }
  // Wakes both drain threads (more work) and a Shutdown waiting for the
  // last in-flight turn to leave kRunning.
  ready_cv_.notify_all();
}

double TenantRouter::QuantumLocked(const Tenant* t) const {
  const double max_batch = static_cast<double>(options_.shard.max_batch);
  return std::max(1.0, std::round(t->qos.weight * max_batch));
}

TenantRouter::TurnPlan TenantRouter::BeginTurnLocked(Tenant* t) {
  const double quantum = QuantumLocked(t);
  TurnPlan plan;
  // Cap the accumulated credit at one quantum plus the residual of a
  // partially spent turn, so a long-idle ready shard cannot burst
  // arbitrarily far past its proportional share.
  plan.deficit = std::min(t->deficit + quantum,
                          quantum + static_cast<double>(
                                        options_.shard.max_batch));
  plan.byte_budget = t->qos.byte_budget;
  return plan;
}

size_t TenantRouter::RunTurn(Tenant* t, TurnPlan* plan) {
  // The shard is kRunning: this thread owns its drain exclusively, so
  // ProcessBatch needs no router lock. Each inner batch is bounded by
  // max_batch (the service clamps) and by the remaining deficit, so a
  // heavy tenant's turn drains several batches while a light tenant's
  // drains a fraction — proportional share at statement granularity.
  size_t drained = 0;
  while (plan->deficit >= 1.0) {
    const size_t allowed = static_cast<size_t>(plan->deficit);
    const size_t n = t->service->ProcessBatch(allowed, plan->byte_budget);
    if (n == 0) break;  // ran dry (or the work vanished) — no spin
    drained += n;
    plan->deficit -= static_cast<double>(n);
    if (!t->service->HasDeliverableWork()) break;
  }
  return drained;
}

void TenantRouter::EndTurn(Tenant* t, const TurnPlan& plan, size_t drained) {
  std::lock_guard<std::mutex> lock(mu_);
  t->deficit = plan.deficit;
  if (drained == 0) {
    // The deliverable work vanished between scheduling and the turn (e.g.
    // an intake closed under a racing shutdown): count it and idle the
    // shard rather than re-queueing a shard that cannot drain.
    ++empty_turns_;
    t->last_active = ++activity_clock_;
    t->sched = Tenant::Sched::kIdle;
    t->deficit = 0.0;
    ready_cv_.notify_all();
    return;
  }
  FinishTurnLocked(t);
}

TenantRouter::Tenant* TenantRouter::NextReadyLocked() {
  if (ready_.empty()) return nullptr;
  Tenant* t = ready_.front();
  ready_.pop_front();
  t->sched = Tenant::Sched::kRunning;
  return t;
}

void TenantRouter::DrainLoop() {
  while (true) {
    Tenant* t = nullptr;
    TurnPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (stopping_) return;  // Shutdown drains shards inline afterwards
      t = NextReadyLocked();
      if (t == nullptr) continue;
      plan = BeginTurnLocked(t);
    }
    size_t drained = RunTurn(t, &plan);
    EndTurn(t, plan, drained);
  }
}

std::string TenantRouter::DrainOne() {
  Tenant* t = nullptr;
  TurnPlan plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return "";
    t = NextReadyLocked();
    if (t == nullptr) return "";
    plan = BeginTurnLocked(t);
  }
  size_t drained = RunTurn(t, &plan);
  EndTurn(t, plan, drained);
  return t->id;
}

bool TenantRouter::Submit(const std::string& tenant, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->Submit(std::move(stmt));  // may block on backpressure
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (ok) NotifyReadyLocked(t);
  return ok;
}

bool TenantRouter::TrySubmit(const std::string& tenant, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->TrySubmit(std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (ok) NotifyReadyLocked(t);
  return ok;
}

bool TenantRouter::SubmitAt(const std::string& tenant, uint64_t seq,
                            Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->SubmitAt(seq, std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  // A successful out-of-order push is not deliverable yet, but CanPop
  // decides that — notify is cheap and exact.
  if (ok) NotifyReadyLocked(t);
  return ok;
}

PushAtResult TenantRouter::TrySubmitAt(const std::string& tenant,
                                       uint64_t seq, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return PushAtResult::kClosed;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return PushAtResult::kClosed;
    service = t->service.get();
    ++t->refs;
  }
  PushAtResult result = service->TrySubmitAt(seq, std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (result == PushAtResult::kAccepted) NotifyReadyLocked(t);
  return result;
}

PushAtResult TenantRouter::SubmitWithDeadline(
    const std::string& tenant, Statement stmt,
    std::chrono::steady_clock::time_point deadline) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return PushAtResult::kClosed;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return PushAtResult::kClosed;
    service = t->service.get();
    ++t->refs;
  }
  PushAtResult result = service->SubmitWithDeadline(std::move(stmt), deadline);
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (result == PushAtResult::kAccepted) NotifyReadyLocked(t);
  return result;
}

PushAtResult TenantRouter::SubmitAtWithDeadline(
    const std::string& tenant, uint64_t seq, Statement stmt,
    std::chrono::steady_clock::time_point deadline) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return PushAtResult::kClosed;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return PushAtResult::kClosed;
    service = t->service.get();
    ++t->refs;
  }
  PushAtResult result =
      service->SubmitAtWithDeadline(seq, std::move(stmt), deadline);
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (result == PushAtResult::kAccepted) NotifyReadyLocked(t);
  return result;
}

void TenantRouter::SetTenantQos(const std::string& tenant, TenantQos qos) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.tenant_qos[tenant] = qos;
  auto it = tenants_.find(tenant);
  // Weight and byte budget act at the next BeginTurnLocked; the service
  // knobs (latency budget, sampling floor) bind at (re-)admission.
  if (it != tenants_.end()) it->second->qos = qos;
}

TenantQos TenantRouter::GetTenantQos(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second->qos;
  auto qos_it = options_.tenant_qos.find(tenant);
  return qos_it != options_.tenant_qos.end() ? qos_it->second
                                             : options_.default_qos;
}

void TenantRouter::Feedback(const std::string& tenant, IndexSet f_plus,
                            IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return;
  t->service->Feedback(std::move(f_plus), std::move(f_minus));
}

void TenantRouter::FeedbackAfter(const std::string& tenant,
                                 uint64_t after_seq, IndexSet f_plus,
                                 IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return;
  t->service->FeedbackAfter(after_seq, std::move(f_plus),
                            std::move(f_minus));
}

std::shared_ptr<const RecommendationSnapshot> TenantRouter::Recommendation(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return nullptr;
  return t->service->Recommendation();
}

bool TenantRouter::WaitUntilAnalyzed(const std::string& tenant, uint64_t n) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool reached = service->WaitUntilAnalyzed(n);
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  return reached;
}

uint64_t TenantRouter::analyzed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  return t == nullptr ? 0 : t->service->analyzed();
}

std::vector<IndexSet> TenantRouter::History(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  Tenant* t = it->second.get();
  std::vector<IndexSet> history = t->retired_history;
  if (t->service != nullptr) {
    std::vector<IndexSet> live = t->service->History();
    history.insert(history.end(), live.begin(), live.end());
  }
  return history;
}

RecoveryStats TenantRouter::LastRecovery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  return t == nullptr ? RecoveryStats{} : t->last_recovery;
}

uint64_t TenantRouter::HistoryStart(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->history_start;
}

bool TenantRouter::IsResident(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second->service != nullptr;
}

StatusOr<TunerService::PendingVotes> TenantRouter::TakeCarriedVotes(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TunerService::PendingVotes{};
  Tenant* t = it->second.get();
  if (t->service != nullptr) {
    return Status::FailedPrecondition(
        "TakeCarriedVotes: tenant is resident — evict first");
  }
  TunerService::PendingVotes votes;
  votes.swap(t->carried_votes);
  return votes;
}

Status TenantRouter::SeedCarriedVotes(const std::string& tenant,
                                      TunerService::PendingVotes votes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto entry = std::make_unique<Tenant>();
    entry->id = tenant;
    it = tenants_.emplace(tenant, std::move(entry)).first;
  }
  Tenant* t = it->second.get();
  if (t->service != nullptr) {
    return Status::FailedPrecondition(
        "SeedCarriedVotes: tenant is already resident");
  }
  for (auto& [after_seq, vote] : votes) {
    t->carried_votes.emplace(after_seq, std::move(vote));
  }
  return Status::Ok();
}

bool TenantRouter::Evict(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  return EvictLocked(it->second.get());
}

size_t TenantRouter::EvictIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr && EvictLocked(tenant.get())) {
      ++evicted;
    }
  }
  return evicted;
}

std::vector<std::string> TenantRouter::ResidentTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  for (const auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr) ids.push_back(id);
  }
  return ids;
}

std::vector<std::string> TenantRouter::PersistedTenants() const {
  if (options_.checkpoint_root.empty()) return {};
  auto ids = persist::ListTenantIds(options_.checkpoint_root);
  std::vector<std::string> all = ids.ok() ? *ids : std::vector<std::string>{};
  if (archive_ != nullptr) {
    // Archived tenants are persisted too — just colder. A tenant both on
    // disk and archived (crash between pack and directory removal)
    // appears once.
    std::vector<std::string> archived = archive_->Tenants();
    all.insert(all.end(), archived.begin(), archived.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
  }
  return all;
}

Status TenantRouter::MaterializeLocked(const std::string& id,
                                       const std::string& dir) {
  if (archive_ == nullptr || !archive_->Contains(id)) return Status::Ok();
  std::error_code ec;
  if (std::filesystem::exists(dir, ec)) {
    // Crash between pack and directory removal: the directory is
    // authoritative (archival makes packs durable first), so the archive
    // entry is the stale copy.
    return archive_->Drop(id);
  }
  StatusOr<std::string> pack = archive_->Fetch(id);
  if (!pack.ok()) return pack.status();
  WFIT_RETURN_IF_ERROR(persist::UnpackCheckpointDir(*pack, dir));
  ++tenants_unarchived_;
  return archive_->Drop(id);
}

Status TenantRouter::EnsureTenantMaterialized(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_root.empty()) return Status::Ok();
  return MaterializeLocked(
      tenant, persist::TenantCheckpointDir(options_.checkpoint_root, tenant));
}

StatusOr<size_t> TenantRouter::ArchiveColdTenants() {
  std::lock_guard<std::mutex> lock(mu_);
  if (archive_ == nullptr || options_.checkpoint_root.empty()) return 0;
  auto listed = persist::ListTenantIds(options_.checkpoint_root);
  if (!listed.ok()) return listed.status();
  // Phase 1: pack + stage every cold tree, then one durable Flush.
  std::vector<std::string> staged;
  for (const std::string& id : *listed) {
    auto it = tenants_.find(id);
    if (it != tenants_.end() && it->second->service != nullptr) continue;
    const std::string dir =
        persist::TenantCheckpointDir(options_.checkpoint_root, id);
    StatusOr<std::string> pack = persist::PackCheckpointDir(dir);
    if (!pack.ok()) {
      obs::Log(obs::LogLevel::kWarn, "router.archive_pack_failed")
          .Str("tenant", id)
          .Str("error", pack.status().ToString());
      continue;  // directory stays; it is simply not cold-tiered
    }
    WFIT_RETURN_IF_ERROR(archive_->Stage(id, std::move(*pack)));
    staged.push_back(id);
  }
  WFIT_RETURN_IF_ERROR(archive_->Flush());
  // Phase 2: every staged pack is durable in a segment — only now do the
  // directories go. A crash mid-removal leaves some directories behind;
  // they win over their archive entries at the next touch (stale entry
  // dropped), so nothing is lost either way.
  for (const std::string& id : staged) {
    std::error_code ec;
    std::filesystem::remove_all(
        persist::TenantCheckpointDir(options_.checkpoint_root, id), ec);
    ++tenants_archived_;
  }
  return staged.size();
}

RouterMetricsSnapshot TenantRouter::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterMetricsSnapshot s;
  for (const auto& [id, tenant] : tenants_) {
    TenantMetricsEntry entry;
    entry.id = id;
    entry.service = tenant->retired;
    if (tenant->service != nullptr) {
      AccumulateCounters(&entry.service, tenant->service->Metrics());
      entry.resident = true;
    }
    entry.evictions = tenant->evictions;
    entry.qos_weight = tenant->qos.weight;
    entry.qos_byte_budget = tenant->qos.byte_budget;
    entry.drr_deficit = tenant->deficit;
    AccumulateCounters(&s.aggregate, entry.service);
    s.tenants.push_back(std::move(entry));
  }
  s.tenants_known = tenants_.size();
  s.tenants_resident = resident_count_;
  s.admissions = admissions_;
  s.evictions = evictions_;
  s.resident_footprint_bytes = resident_bytes_;
  s.empty_turns = empty_turns_;
  s.tenants_archived = tenants_archived_;
  s.tenants_unarchived = tenants_unarchived_;
  if (archive_ != nullptr) {
    persist::ArchiveStats a = archive_->GetStats();
    s.archive_segments = a.segments;
    s.archive_live_bytes = a.live_bytes;
    s.archive_segment_bytes = a.segment_bytes;
  }
  if (batcher_ != nullptr) {
    FsyncBatcher::Stats b = batcher_->GetStats();
    s.group_commit_cycles = b.cycles;
    s.group_commit_sync_calls = b.sync_calls;
    s.group_commit_required = b.required;
    s.group_commit_deferred = b.deferred;
    s.group_commit_syncfs = b.syncfs_calls;
  }
  return s;
}

std::string TenantRouter::ExportText() const {
  return ExportRouterText(Metrics());
}

}  // namespace wfit::service
