#include "service/tenant_router.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "obs/log.h"
#include "persist/tenant_tree.h"

namespace wfit::service {

namespace {

void RouterCounter(std::ostream& os, const char* name, uint64_t v,
                   const char* help) {
  os << "# HELP wfit_router_" << name << " " << help << "\n"
     << "# TYPE wfit_router_" << name << " counter\n"
     << "wfit_router_" << name << " " << v << "\n";
}

void RouterGauge(std::ostream& os, const char* name, uint64_t v,
                 const char* help) {
  os << "# HELP wfit_router_" << name << " " << help << "\n"
     << "# TYPE wfit_router_" << name << " gauge\n"
     << "wfit_router_" << name << " " << v << "\n";
}

}  // namespace

void ExportRouterText(const RouterMetricsSnapshot& s, std::ostream& os) {
  // Aggregate rollup first (the familiar wfit_service_* families), then
  // the labelled per-tenant series, then router-level families.
  ExportText(s.aggregate, os);
  std::vector<std::pair<std::string, MetricsSnapshot>> tenants;
  tenants.reserve(s.tenants.size());
  for (const TenantMetricsEntry& t : s.tenants) {
    tenants.emplace_back(t.id, t.service);
  }
  ExportTenantText(tenants, os);
  os << "# HELP wfit_tenant_evictions_total Checkpoint-then-close evictions"
        " of this tenant's shard\n"
     << "# TYPE wfit_tenant_evictions_total counter\n";
  for (const TenantMetricsEntry& t : s.tenants) {
    os << "wfit_tenant_evictions_total{tenant=\"" << EscapeLabelValue(t.id)
       << "\"} " << t.evictions << "\n";
  }
  os << "# HELP wfit_tenant_resident 1 when the tenant's shard is live\n"
     << "# TYPE wfit_tenant_resident gauge\n";
  for (const TenantMetricsEntry& t : s.tenants) {
    os << "wfit_tenant_resident{tenant=\"" << EscapeLabelValue(t.id)
       << "\"} " << (t.resident ? 1 : 0) << "\n";
  }
  RouterGauge(os, "tenants_known", s.tenants_known,
              "Tenants ever routed through this process");
  RouterGauge(os, "tenants_resident", s.tenants_resident,
              "Tenants with a live shard");
  RouterCounter(os, "admissions_total", s.admissions,
                "Shard creations, including re-admissions after eviction");
  RouterCounter(os, "evictions_total", s.evictions,
                "Checkpoint-then-close shard evictions");
  RouterGauge(os, "resident_footprint_bytes", s.resident_footprint_bytes,
              "Estimated aggregate footprint of resident shards");
}

std::string ExportRouterText(const RouterMetricsSnapshot& snapshot) {
  std::ostringstream os;
  ExportRouterText(snapshot, os);
  return os.str();
}

TenantRouter::TenantRouter(TunerFactory factory, TenantRouterOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  WFIT_CHECK(factory_ != nullptr, "TenantRouter requires a tuner factory");
  WFIT_CHECK(options_.shard.checkpoint_dir.empty(),
             "per-tenant checkpoint directories are derived from "
             "checkpoint_root; shard.checkpoint_dir must be empty");
}

TenantRouter::~TenantRouter() { Shutdown(); }

void TenantRouter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  WFIT_CHECK(!started_, "TenantRouter::Start called twice");
  started_ = true;
  const size_t analysis = options_.analysis_threads == 0
                              ? WorkerPool::DefaultThreads()
                              : options_.analysis_threads;
  if (analysis > 1) {
    // Draining threads participate in every ParallelFor, so a pool of
    // analysis - 1 helpers yields `analysis` concurrent workers per
    // statement — shared by every shard.
    analysis_pool_ = std::make_unique<WorkerPool>(analysis - 1);
  }
  drain_threads_.reserve(options_.drain_threads);
  for (size_t i = 0; i < options_.drain_threads; ++i) {
    drain_threads_.emplace_back([this] { DrainLoop(); });
  }
}

void TenantRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& t : drain_threads_) t.join();
  drain_threads_.clear();
  std::unique_lock<std::mutex> lock(mu_);
  // An embedder-driven DrainOne turn (drain_threads = 0) may still be
  // inside ProcessBatch; wait it out so each shard's inline drain below is
  // properly serialized. Producers racing Shutdown see closed queues.
  ready_cv_.wait(lock, [&] {
    for (const auto& [id, tenant] : tenants_) {
      if (tenant->sched == Tenant::Sched::kRunning) return false;
    }
    return true;
  });
  // An evicted tenant may hold votes that were keyed past its eviction
  // point; a dedicated service's Shutdown applies ALL pending feedback,
  // so flush them by re-admitting (the carried votes re-register during
  // admission and the inline Shutdown below applies + checkpoints them).
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service == nullptr && !tenant->carried_votes.empty()) {
      GetOrAdmitLocked(id, /*admit_while_stopping=*/true);
    }
  }
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr) {
      tenant->service->Shutdown();
    }
  }
}

TenantRouter::Tenant* TenantRouter::GetOrAdmitLocked(
    const std::string& id, bool admit_while_stopping) {
  WFIT_CHECK(started_, "TenantRouter used before Start()");
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    if (stopping_ && !admit_while_stopping) return nullptr;
    auto tenant = std::make_unique<Tenant>();
    tenant->id = id;
    it = tenants_.emplace(id, std::move(tenant)).first;
  }
  Tenant* t = it->second.get();
  t->last_active = ++activity_clock_;
  if (t->service != nullptr) return t;
  // A shard admitted after Shutdown began would never be scheduled.
  if (stopping_ && !admit_while_stopping) return nullptr;

  // Lazy (re-)admission: make room, build the tuner, recover the tenant's
  // checkpoint directory, and re-register votes carried over the eviction.
  const uint64_t incoming_bytes =
      std::max(t->footprint_hint, options_.min_tenant_footprint_bytes);
  EnsureCapacityLocked(incoming_bytes);
  TenantTuner made = factory_(id);
  if (made.tuner == nullptr) {
    obs::Log(obs::LogLevel::kError, "router.factory_failed").Str("tenant", id);
    return nullptr;
  }
  TunerServiceOptions shard_options = options_.shard;
  if (!options_.checkpoint_root.empty()) {
    shard_options.checkpoint_dir =
        persist::TenantCheckpointDir(options_.checkpoint_root, id);
    WFIT_CHECK(made.pool != nullptr,
               "a checkpointing TenantRouter requires the factory to "
               "supply the tenant's index pool");
  }
  RecoveryStats recovery;
  auto opened = TunerService::Open(std::move(made.tuner), made.pool,
                                   std::move(shard_options), &recovery);
  if (!opened.ok()) {
    obs::Log(obs::LogLevel::kError, "router.admission_failed")
        .Str("tenant", id)
        .Str("error", opened.status().ToString());
    return nullptr;
  }
  t->service = std::move(*opened);
  t->last_recovery = recovery;
  if (!t->history_start_set) {
    t->history_start =
        recovery.snapshot_loaded ? recovery.snapshot_analyzed : 0;
    t->history_start_set = true;
  }
  t->service->StartDetached(analysis_pool_.get());
  for (auto& [after_seq, votes] : t->carried_votes) {
    t->service->FeedbackAfter(after_seq, votes.first, votes.second);
  }
  if (options_.repin) {
    // Votes lost to a crash have boundaries >= the recovery point; they
    // must be pinned before any requeued intake is scheduled below, or
    // they would apply late. Votes the eviction path carried over (clean
    // evictions and migration handoffs) were just re-registered above —
    // the hook re-reporting one of those must not register it twice.
    for (PinnedVote& vote : options_.repin(id, recovery)) {
      if (vote.after_seq < recovery.analyzed) continue;
      auto [begin, end] = t->carried_votes.equal_range(vote.after_seq);
      bool carried = false;
      for (auto it2 = begin; it2 != end; ++it2) {
        if (it2->second.first == vote.f_plus &&
            it2->second.second == vote.f_minus) {
          carried = true;
          break;
        }
      }
      if (!carried) {
        t->service->FeedbackAfter(vote.after_seq, std::move(vote.f_plus),
                                  std::move(vote.f_minus));
      }
    }
  }
  t->carried_votes.clear();
  t->footprint = incoming_bytes;
  resident_bytes_ += t->footprint;
  ++resident_count_;
  ++admissions_;
  // Intake requeued by recovery is deliverable right away; schedule it.
  NotifyReadyLocked(t);
  return t;
}

void TenantRouter::EnsureCapacityLocked(uint64_t incoming_bytes) {
  // Best-effort: only idle shards can be closed losslessly, and without a
  // checkpoint root eviction would lose state, so the bound is advisory
  // when every resident shard is busy. During Shutdown's carried-vote
  // flush the bound is moot (everything closes in a moment anyway) and
  // evicting mid-iteration would churn.
  if (options_.checkpoint_root.empty() || stopping_) return;
  auto over = [&] {
    bool count_over = options_.max_resident_tenants != 0 &&
                      resident_count_ + 1 > options_.max_resident_tenants;
    bool bytes_over = options_.max_resident_bytes != 0 &&
                      resident_bytes_ + incoming_bytes >
                          options_.max_resident_bytes;
    return count_over || bytes_over;
  };
  while (over()) {
    Tenant* victim = nullptr;
    for (auto& [id, tenant] : tenants_) {
      Tenant* t = tenant.get();
      if (t->service == nullptr || t->sched != Tenant::Sched::kIdle ||
          t->refs != 0 || t->service->QueueDepth() != 0) {
        continue;
      }
      if (victim == nullptr || t->last_active < victim->last_active) {
        victim = t;
      }
    }
    if (victim == nullptr || !EvictLocked(victim)) break;
  }
}

bool TenantRouter::EvictLocked(Tenant* t) {
  if (t->service == nullptr || t->sched != Tenant::Sched::kIdle ||
      t->refs != 0 || t->service->QueueDepth() != 0 ||
      options_.checkpoint_root.empty()) {
    return false;
  }
  // Checkpoint-then-close: due feedback applies and is journaled, a final
  // snapshot seals the state, and future-keyed votes come back to us for
  // the next incarnation.
  t->carried_votes = t->service->CloseForEviction();
  MetricsSnapshot metrics = t->service->Metrics();
  t->footprint_hint = std::max(metrics.last_snapshot_bytes,
                               options_.min_tenant_footprint_bytes);
  // Only counters carry across incarnations. Instantaneous gauges
  // (queue depth/capacity, snapshot size, publication version) describe
  // the live shard; folding them into `retired` would inflate the
  // tenant's series by one capacity/snapshot per eviction cycle.
  metrics.queue_depth = 0;
  metrics.queue_capacity = 0;
  metrics.last_snapshot_bytes = 0;
  metrics.snapshot_version = 0;
  AccumulateCounters(&t->retired, metrics);
  if (options_.shard.record_history) {
    std::vector<IndexSet> history = t->service->History();
    t->retired_history.insert(t->retired_history.end(), history.begin(),
                              history.end());
  }
  t->service.reset();
  resident_bytes_ -= t->footprint;
  t->footprint = 0;
  --resident_count_;
  ++t->evictions;
  ++evictions_;
  return true;
}

void TenantRouter::NotifyReadyLocked(Tenant* t) {
  if (t->sched == Tenant::Sched::kIdle && t->service != nullptr &&
      t->service->HasDeliverableWork()) {
    t->sched = Tenant::Sched::kReady;
    ready_.push_back(t);
    ready_cv_.notify_one();
  }
}

void TenantRouter::FinishTurnLocked(Tenant* t) {
  t->last_active = ++activity_clock_;
  if (t->service != nullptr && t->service->HasDeliverableWork()) {
    // Tail of the ready ring: round-robin across backlogged shards.
    t->sched = Tenant::Sched::kReady;
    ready_.push_back(t);
  } else {
    t->sched = Tenant::Sched::kIdle;
  }
  // Wakes both drain threads (more work) and a Shutdown waiting for the
  // last in-flight turn to leave kRunning.
  ready_cv_.notify_all();
}

TenantRouter::Tenant* TenantRouter::NextReadyLocked() {
  if (ready_.empty()) return nullptr;
  Tenant* t = ready_.front();
  ready_.pop_front();
  t->sched = Tenant::Sched::kRunning;
  return t;
}

void TenantRouter::DrainLoop() {
  while (true) {
    Tenant* t = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (stopping_) return;  // Shutdown drains shards inline afterwards
      t = NextReadyLocked();
      if (t == nullptr) continue;
    }
    t->service->ProcessBatch();
    std::lock_guard<std::mutex> lock(mu_);
    FinishTurnLocked(t);
  }
}

std::string TenantRouter::DrainOne() {
  Tenant* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return "";
    t = NextReadyLocked();
    if (t == nullptr) return "";
  }
  t->service->ProcessBatch();
  std::lock_guard<std::mutex> lock(mu_);
  FinishTurnLocked(t);
  return t->id;
}

bool TenantRouter::Submit(const std::string& tenant, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->Submit(std::move(stmt));  // may block on backpressure
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (ok) NotifyReadyLocked(t);
  return ok;
}

bool TenantRouter::TrySubmit(const std::string& tenant, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->TrySubmit(std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (ok) NotifyReadyLocked(t);
  return ok;
}

bool TenantRouter::SubmitAt(const std::string& tenant, uint64_t seq,
                            Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool ok = service->SubmitAt(seq, std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  // A successful out-of-order push is not deliverable yet, but CanPop
  // decides that — notify is cheap and exact.
  if (ok) NotifyReadyLocked(t);
  return ok;
}

PushAtResult TenantRouter::TrySubmitAt(const std::string& tenant,
                                       uint64_t seq, Statement stmt) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return PushAtResult::kClosed;
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return PushAtResult::kClosed;
    service = t->service.get();
    ++t->refs;
  }
  PushAtResult result = service->TrySubmitAt(seq, std::move(stmt));
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  if (result == PushAtResult::kAccepted) NotifyReadyLocked(t);
  return result;
}

void TenantRouter::Feedback(const std::string& tenant, IndexSet f_plus,
                            IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return;
  t->service->Feedback(std::move(f_plus), std::move(f_minus));
}

void TenantRouter::FeedbackAfter(const std::string& tenant,
                                 uint64_t after_seq, IndexSet f_plus,
                                 IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return;
  t->service->FeedbackAfter(after_seq, std::move(f_plus),
                            std::move(f_minus));
}

std::shared_ptr<const RecommendationSnapshot> TenantRouter::Recommendation(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  if (t == nullptr) return nullptr;
  return t->service->Recommendation();
}

bool TenantRouter::WaitUntilAnalyzed(const std::string& tenant, uint64_t n) {
  Tenant* t = nullptr;
  TunerService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = GetOrAdmitLocked(tenant);
    if (t == nullptr) return false;
    service = t->service.get();
    ++t->refs;
  }
  bool reached = service->WaitUntilAnalyzed(n);
  std::lock_guard<std::mutex> lock(mu_);
  --t->refs;
  return reached;
}

uint64_t TenantRouter::analyzed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  return t == nullptr ? 0 : t->service->analyzed();
}

std::vector<IndexSet> TenantRouter::History(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  Tenant* t = it->second.get();
  std::vector<IndexSet> history = t->retired_history;
  if (t->service != nullptr) {
    std::vector<IndexSet> live = t->service->History();
    history.insert(history.end(), live.begin(), live.end());
  }
  return history;
}

RecoveryStats TenantRouter::LastRecovery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetOrAdmitLocked(tenant);
  return t == nullptr ? RecoveryStats{} : t->last_recovery;
}

uint64_t TenantRouter::HistoryStart(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->history_start;
}

bool TenantRouter::IsResident(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second->service != nullptr;
}

StatusOr<TunerService::PendingVotes> TenantRouter::TakeCarriedVotes(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TunerService::PendingVotes{};
  Tenant* t = it->second.get();
  if (t->service != nullptr) {
    return Status::FailedPrecondition(
        "TakeCarriedVotes: tenant is resident — evict first");
  }
  TunerService::PendingVotes votes;
  votes.swap(t->carried_votes);
  return votes;
}

Status TenantRouter::SeedCarriedVotes(const std::string& tenant,
                                      TunerService::PendingVotes votes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    auto entry = std::make_unique<Tenant>();
    entry->id = tenant;
    it = tenants_.emplace(tenant, std::move(entry)).first;
  }
  Tenant* t = it->second.get();
  if (t->service != nullptr) {
    return Status::FailedPrecondition(
        "SeedCarriedVotes: tenant is already resident");
  }
  for (auto& [after_seq, vote] : votes) {
    t->carried_votes.emplace(after_seq, std::move(vote));
  }
  return Status::Ok();
}

bool TenantRouter::Evict(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  return EvictLocked(it->second.get());
}

size_t TenantRouter::EvictIdle() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr && EvictLocked(tenant.get())) {
      ++evicted;
    }
  }
  return evicted;
}

std::vector<std::string> TenantRouter::ResidentTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  for (const auto& [id, tenant] : tenants_) {
    if (tenant->service != nullptr) ids.push_back(id);
  }
  return ids;
}

std::vector<std::string> TenantRouter::PersistedTenants() const {
  if (options_.checkpoint_root.empty()) return {};
  auto ids = persist::ListTenantIds(options_.checkpoint_root);
  return ids.ok() ? *ids : std::vector<std::string>{};
}

RouterMetricsSnapshot TenantRouter::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  RouterMetricsSnapshot s;
  for (const auto& [id, tenant] : tenants_) {
    TenantMetricsEntry entry;
    entry.id = id;
    entry.service = tenant->retired;
    if (tenant->service != nullptr) {
      AccumulateCounters(&entry.service, tenant->service->Metrics());
      entry.resident = true;
    }
    entry.evictions = tenant->evictions;
    AccumulateCounters(&s.aggregate, entry.service);
    s.tenants.push_back(std::move(entry));
  }
  s.tenants_known = tenants_.size();
  s.tenants_resident = resident_count_;
  s.admissions = admissions_;
  s.evictions = evictions_;
  s.resident_footprint_bytes = resident_bytes_;
  return s;
}

std::string TenantRouter::ExportText() const {
  return ExportRouterText(Metrics());
}

}  // namespace wfit::service
