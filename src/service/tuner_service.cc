#include "service/tuner_service.h"

#include <chrono>
#include <limits>

#include "common/check.h"

namespace wfit::service {

namespace {
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}
}  // namespace

TunerService::TunerService(std::unique_ptr<Tuner> tuner,
                           TunerServiceOptions options)
    : tuner_(std::move(tuner)),
      options_(options),
      queue_(options.queue_capacity) {
  WFIT_CHECK(tuner_ != nullptr, "TunerService requires a tuner");
  WFIT_CHECK(options_.max_batch > 0, "max_batch must be positive");
}

TunerService::~TunerService() { Shutdown(); }

void TunerService::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  WFIT_CHECK(!started_, "TunerService::Start called twice");
  started_ = true;
  const size_t threads = options_.analysis_threads == 0
                             ? WorkerPool::DefaultThreads()
                             : options_.analysis_threads;
  if (threads > 1) {
    // The analysis worker participates in every ParallelFor, so a pool of
    // threads - 1 gives exactly `threads` concurrent analysis workers.
    analysis_pool_ = std::make_unique<WorkerPool>(threads - 1);
    tuner_->SetAnalysisPool(analysis_pool_.get());
  }
  metrics_.SetAnalysisThreads(threads);
  Publish();  // initial configuration, analyzed == 0
  worker_ = std::thread([this] { WorkerLoop(); });
}

void TunerService::Shutdown() {
  queue_.Close();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ && !joined_) {
    worker_.join();
    joined_ = true;
  }
}

bool TunerService::Submit(Statement stmt) {
  if (!queue_.Push(std::move(stmt))) return false;
  metrics_.OnSubmit();
  return true;
}

bool TunerService::TrySubmit(Statement stmt) {
  if (!queue_.TryPush(std::move(stmt))) {
    metrics_.OnSubmitRejected();
    return false;
  }
  metrics_.OnSubmit();
  return true;
}

bool TunerService::SubmitAt(uint64_t seq, Statement stmt) {
  if (!queue_.PushAt(seq, std::move(stmt))) return false;
  metrics_.OnSubmit();
  return true;
}

void TunerService::Feedback(IndexSet f_plus, IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  asap_feedback_.emplace_back(std::move(f_plus), std::move(f_minus));
}

void TunerService::FeedbackAfter(uint64_t after_seq, IndexSet f_plus,
                                 IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  pending_feedback_.emplace(after_seq,
                            std::make_pair(std::move(f_plus),
                                           std::move(f_minus)));
}

std::shared_ptr<const RecommendationSnapshot> TunerService::Recommendation()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool TunerService::WaitUntilAnalyzed(uint64_t n) const {
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [&] { return analyzed_ >= n || worker_done_; });
  return analyzed_ >= n;
}

uint64_t TunerService::analyzed() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return analyzed_;
}

MetricsSnapshot TunerService::Metrics() const {
  MetricsSnapshot s = metrics_.Snapshot();
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.queue_high_water = queue_.high_water();
  s.push_waits = queue_.push_waits();
  return s;
}

std::vector<IndexSet> TunerService::History() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return history_;
}

bool TunerService::ApplyFeedback(uint64_t seq, bool inclusive,
                                 bool with_asap) {
  // Collect under the lock, apply outside it: Tuner::Feedback can be
  // expensive and producers must not block on it when casting votes.
  std::vector<std::pair<IndexSet, IndexSet>> to_apply;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    if (with_asap) {
      to_apply.swap(asap_feedback_);
    }
    auto end = inclusive ? pending_feedback_.upper_bound(seq)
                         : pending_feedback_.lower_bound(seq);
    for (auto it = pending_feedback_.begin(); it != end; ++it) {
      to_apply.push_back(std::move(it->second));
    }
    pending_feedback_.erase(pending_feedback_.begin(), end);
  }
  for (auto& [f_plus, f_minus] : to_apply) {
    tuner_->Feedback(f_plus, f_minus);
    metrics_.OnFeedback();
  }
  return !to_apply.empty();
}

bool TunerService::ApplyAllFeedback() {
  return ApplyFeedback(std::numeric_limits<uint64_t>::max(),
                       /*inclusive=*/true, /*with_asap=*/true);
}

void TunerService::Publish() {
  auto snapshot = std::make_shared<RecommendationSnapshot>();
  snapshot->configuration = tuner_->Recommendation();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    snapshot->analyzed = analyzed_;
  }
  metrics_.OnPublish();
  snapshot->version = metrics_.snapshot_version();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

void TunerService::WorkerLoop() {
  std::vector<Statement> batch;
  batch.reserve(options_.max_batch);
  while (true) {
    batch.clear();
    uint64_t first_seq = 0;
    size_t n = queue_.PopBatch(&batch, options_.max_batch, &first_seq);
    if (n == 0) break;  // closed and drained
    metrics_.OnBatch(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t seq = first_seq + i;
      // Votes that arrived since the last boundary (ASAP, or keyed to an
      // already-analyzed statement) apply before this statement.
      bool fed = ApplyFeedback(seq, /*inclusive=*/false, /*with_asap=*/true);
      Clock::time_point start = Clock::now();
      tuner_->AnalyzeQuery(batch[i]);
      metrics_.OnAnalyzed(MicrosSince(start));
      metrics_.SetRepartitions(tuner_->RepartitionCount());
      WhatIfCacheCounters cache = tuner_->WhatIfCache();
      metrics_.SetWhatIfCache(cache.hits, cache.misses);
      // Deterministic interleave: votes keyed to this statement apply
      // right after it, before its recommendation is recorded.
      fed |= ApplyFeedback(seq, /*inclusive=*/true, /*with_asap=*/false);
      (void)fed;
      {
        std::lock_guard<std::mutex> lock(progress_mu_);
        analyzed_ = seq + 1;
      }
      if (options_.record_history) {
        std::lock_guard<std::mutex> lock(history_mu_);
        history_.push_back(tuner_->Recommendation());
      }
      Publish();
      progress_cv_.notify_all();
    }
  }
  // Drain path: votes cast after the final statement still take effect.
  if (ApplyAllFeedback()) Publish();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    worker_done_ = true;
  }
  progress_cv_.notify_all();  // waiters must not hang once we stop
}

}  // namespace wfit::service
