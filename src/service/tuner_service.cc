#include "service/tuner_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>

#include "common/check.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "persist/snapshot.h"
#include "service/fsync_batcher.h"

namespace wfit::service {

namespace {
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double UnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

constexpr char kJournalFile[] = "journal.wfj";

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) for the sampling decision of
/// statement `seq`: a pure function of (seed, seq), so replay re-derives
/// the exact keep/drop outcome with no RNG state to persist.
double SampleUnit(uint64_t seed, uint64_t seq) {
  return static_cast<double>(SplitMix64(seed ^ seq) >> 11) * 0x1.0p-53;
}

const char* OverloadModeName(uint8_t mode) {
  switch (mode) {
    case 1:
      return "shedding";
    case 2:
      return "sampling";
    default:
      return "normal";
  }
}
}  // namespace

TunerService::TunerService(std::unique_ptr<Tuner> tuner,
                           TunerServiceOptions options)
    : tuner_(std::move(tuner)),
      options_(options),
      queue_(options.queue_capacity) {
  WFIT_CHECK(tuner_ != nullptr, "TunerService requires a tuner");
  WFIT_CHECK(options_.max_batch > 0, "max_batch must be positive");
  WFIT_CHECK(options_.checkpoint_dir.empty(),
             "checkpointing services must be created via TunerService::Open");
  WFIT_CHECK(options_.overload.sample_floor > 0.0 &&
                 options_.overload.sample_floor <= 1.0,
             "overload.sample_floor must be in (0, 1]");
  WFIT_CHECK(options_.overload.low_watermark <
                 options_.overload.high_watermark,
             "overload watermarks must satisfy low < high");
  sample_seed_ = options_.overload.sample_seed;
}

StatusOr<std::unique_ptr<TunerService>> TunerService::Open(
    std::unique_ptr<Tuner> tuner, IndexPool* pool,
    TunerServiceOptions options, RecoveryStats* recovery) {
  std::string dir = std::move(options.checkpoint_dir);
  options.checkpoint_dir.clear();
  auto service =
      std::make_unique<TunerService>(std::move(tuner), std::move(options));
  if (!dir.empty()) {
    WFIT_CHECK(pool != nullptr,
               "TunerService::Open: checkpointing requires the index pool");
    service->options_.checkpoint_dir = std::move(dir);
    service->pool_ = pool;
    RecoveryStats stats;
    WFIT_RETURN_IF_ERROR(service->Recover(&stats));
    if (recovery != nullptr) *recovery = stats;
  } else if (recovery != nullptr) {
    *recovery = RecoveryStats{};
  }
  return service;
}

Status TunerService::Recover(RecoveryStats* stats) {
  namespace fs = std::filesystem;
  const std::string& dir = options_.checkpoint_dir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint dir " + dir);
  }

  {
    persist::DeltaCheckpointer::Options copts;
    copts.enable_deltas = options_.delta_snapshots;
    copts.full_every = options_.full_snapshot_every;
    checkpointer_ = persist::DeltaCheckpointer(copts);
  }
  persist::SnapshotLoadResult loaded = persist::LoadLatestCheckpoint(
      dir, tuner_.get(), pool_, &checkpointer_);
  stats->snapshot_loaded = loaded.loaded;
  stats->snapshot_analyzed = loaded.meta.analyzed;
  stats->snapshots_skipped = loaded.skipped;
  stats->deltas_applied = loaded.deltas_applied;
  if (loaded.loaded) {
    // Overload-controller state at the snapshot point; journaled epoch
    // records past the snapshot LSN override it below as replay reaches
    // their effect sequences. A zero persisted seed (pre-overload
    // snapshot) keeps the configured per-tenant seed.
    overload_mode_ = loaded.meta.overload.mode;
    sample_rate_ = loaded.meta.overload.sample_rate;
    if (loaded.meta.overload.sample_seed != 0) {
      sample_seed_ = loaded.meta.overload.sample_seed;
    }
    dup_window_.assign(loaded.meta.overload.dup_window.begin(),
                       loaded.meta.overload.dup_window.end());
  }
  uint64_t analyzed = loaded.loaded ? loaded.meta.analyzed : 0;
  const uint64_t start_lsn = loaded.loaded ? loaded.meta.journal_lsn : 0;

  const std::string journal_path = (fs::path(dir) / kJournalFile).string();
  uint64_t valid_bytes = 0;
  uint64_t total_records = 0;
  // Set when the snapshot references journal records the file no longer
  // holds (journal deleted or truncated externally): the snapshot is
  // authoritative, nothing is replayed, and a fresh checkpoint below
  // re-stamps the LSN domain so future recoveries line up again.
  bool lsn_domain_mismatch = false;
  // Journaled intake past the durable trajectory point, re-queued below
  // (backed by `read`, which outlives the pushes).
  std::vector<const persist::JournalRecord*> requeue;
  StatusOr<persist::JournalReadResult> read =
      persist::ReadJournal(journal_path);
  // A compacted journal holds records (base_lsn, base_lsn + size]; the
  // writer and snapshot metas keep speaking absolute LSNs.
  const uint64_t journal_base = read.ok() ? read->base_lsn : 0;
  if (read.ok() && (start_lsn > journal_base + read->records.size() ||
                    start_lsn < journal_base)) {
    // Above the tail: records the snapshot references were lost. Below
    // the base: compaction dropped history this (older, stale) snapshot
    // still needs. Either way the snapshot alone is authoritative.
    valid_bytes = read->valid_bytes;
    total_records = journal_base + read->records.size();
    lsn_domain_mismatch = true;
  } else if (read.ok()) {
    valid_bytes = read->valid_bytes;
    total_records = journal_base + read->records.size();
    // Replay the suffix past the snapshot, exactly once. Statements appear
    // in sequence order; votes may be journaled after the batch's WAL
    // statement records, so they are split into a separate queue — but
    // application order among votes IS their journal order, so a simple
    // cursor over that queue, gated by each vote's (boundary, slot),
    // reproduces the original interleave exactly. kAnalyzed markers bound
    // the trajectory-bearing replay: a WAL statement record alone only
    // proves the statement was ingested, not that the votes at its
    // boundaries are durable, so statements past the last contiguous
    // marker are handed back to the queue as fresh intake instead (the
    // driver can still pin votes at those future boundaries).
    std::vector<const persist::JournalRecord*> statements;
    std::vector<const persist::JournalRecord*> votes;
    std::vector<const persist::JournalRecord*> epochs;
    uint64_t durable = analyzed;  // contiguous analyzed markers
    for (size_t i = static_cast<size_t>(start_lsn - journal_base);
         i < read->records.size(); ++i) {
      const persist::JournalRecord& r = read->records[i];
      switch (r.type) {
        case persist::JournalRecordType::kStatement:
          // Strictly increasing first-occurrence order: a crash after a
          // requeue can leave a statement WAL-journaled twice (identical
          // bytes); later copies are skipped.
          if (r.seq >= analyzed &&
              (statements.empty() || r.seq > statements.back()->seq)) {
            statements.push_back(&r);
          }
          break;
        case persist::JournalRecordType::kFeedback:
          votes.push_back(&r);
          break;
        case persist::JournalRecordType::kAnalyzed:
          if (r.seq == durable) ++durable;
          break;
        case persist::JournalRecordType::kEpoch:
          epochs.push_back(&r);
          break;
        case persist::JournalRecordType::kCompactionBase:
          break;  // framing metadata; never surfaced in records
      }
    }
    // Epochs take effect at their sequence; a restart after a requeue can
    // journal a second epoch at the same sequence, and the later record
    // wins — stable sort keeps journal order within equal sequences so
    // the cursor naturally applies them last-wins.
    std::stable_sort(epochs.begin(), epochs.end(),
                     [](const persist::JournalRecord* a,
                        const persist::JournalRecord* b) {
                       return a->seq < b->seq;
                     });
    size_t epoch_cursor = 0;
    auto adopt_epochs_through = [&](uint64_t seq) {
      while (epoch_cursor < epochs.size() &&
             epochs[epoch_cursor]->seq <= seq) {
        const persist::JournalRecord* e = epochs[epoch_cursor++];
        overload_mode_ = e->overload_mode;
        sample_rate_ = e->sample_rate;
        if (e->sample_seed != 0) sample_seed_ = e->sample_seed;
      }
    };
    size_t vote_cursor = 0;
    auto apply_vote = [&] {
      const persist::JournalRecord* v = votes[vote_cursor++];
      tuner_->Feedback(v->f_plus, v->f_minus);
      ++stats->replayed_feedback;
    };
    size_t si = 0;
    for (; si < statements.size(); ++si) {
      const persist::JournalRecord* r = statements[si];
      if (r->seq >= durable) break;  // unanalyzed intake: re-queued below
      if (r->seq != analyzed) break;  // gap: stop at the usable prefix
      // Pre-statement slot: everything applied before this statement ran.
      while (vote_cursor < votes.size() &&
             votes[vote_cursor]->boundary <= r->seq) {
        apply_vote();
      }
      // Mirror the live path's overload decision exactly: same epoch
      // state, same deterministic draw, same duplicate window — so the
      // recovered trajectory is bit-identical to the uninterrupted run
      // even through Shedding/Sampling phases.
      adopt_epochs_through(r->seq);
      bool keep = true;
      bool shed = false;
      if (options_.overload.enabled || overload_mode_ != 0) {
        keep = OverloadDecide(r->seq, r->statement, &shed);
      }
      if (keep) {
        ApplyStatementWeight();
        tuner_->AnalyzeQuery(r->statement);
      }
      ++analyzed;
      ++stats->replayed_statements;
      // Post-statement slot: votes keyed to this statement applied before
      // its recommendation was recorded.
      while (vote_cursor < votes.size() &&
             votes[vote_cursor]->boundary == analyzed &&
             votes[vote_cursor]->post) {
        apply_vote();
      }
      if (options_.record_history) {
        history_.push_back(tuner_->Recommendation());
      }
    }
    // Trailing votes (up to and including the final boundary).
    while (vote_cursor < votes.size() &&
           votes[vote_cursor]->boundary <= analyzed) {
      apply_vote();
    }
    // Journaled-but-unanalyzed intake (at most one batch): back into the
    // queue, contiguously from the recovery point.
    uint64_t next_intake = analyzed;
    for (; si < statements.size(); ++si) {
      if (statements[si]->seq != next_intake) break;
      requeue.push_back(statements[si]);
      ++next_intake;
    }
    // Epochs whose effect point lies beyond the replayed trajectory cover
    // the re-queued intake: the worker adopts each one when it reaches
    // that sequence, before considering any transition of its own.
    for (; epoch_cursor < epochs.size(); ++epoch_cursor) {
      const persist::JournalRecord* e = epochs[epoch_cursor];
      pending_epochs_.push_back(
          PendingEpoch{e->seq, e->overload_mode, e->sample_rate,
                       e->sample_seed});
    }
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  } else if (start_lsn > 0) {
    lsn_domain_mismatch = true;  // snapshot references a vanished journal
  }

  journal_ = std::make_unique<persist::JournalWriter>();
  WFIT_RETURN_IF_ERROR(journal_->Open(journal_path, valid_bytes,
                                      total_records));
  queue_.StartAt(analyzed);
  for (const persist::JournalRecord* r : requeue) {
    // At most one batch (≤ queue capacity), so these never block. A
    // producer replaying the workload may resubmit the same sequence
    // numbers; PushAt drops the duplicates.
    queue_.PushAt(r->seq, r->statement);
    ++stats->requeued_statements;
  }
  // Requeued statements are already in the journal; the worker must not
  // WAL them a second time when it pops them.
  journal_stmt_skip_until_ = analyzed + requeue.size();
  analyzed_ = analyzed;
  stats->analyzed = analyzed;
  last_checkpoint_analyzed_ = loaded.loaded ? loaded.meta.analyzed : 0;
  have_checkpoint_ = loaded.loaded;
  if (lsn_domain_mismatch) {
    obs::Log(obs::LogLevel::kWarn, "recovery.lsn_mismatch")
        .U64("snapshot_lsn", start_lsn)
        .U64("journal_records", total_records);
    // Overwrite the newest snapshot with one whose journal_lsn matches the
    // actual file, so the next recovery replays from a consistent base.
    have_checkpoint_ = false;
    MaybeCheckpoint(/*force=*/true);
  }
  metrics_.SetRecovery(stats->snapshot_loaded, stats->snapshots_skipped,
                       stats->replayed_statements, stats->replayed_feedback);
  metrics_.SetOverloadState(overload_mode_, sample_rate_);
  PushJournalMetrics();
  return Status::Ok();
}

TunerService::~TunerService() {
  Shutdown();
  // Forget the journal fd from any shared batcher before the writer's own
  // destructor closes it (a batched sync against a recycled descriptor
  // number would hit the wrong file).
  CloseJournal();
}

void TunerService::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  WFIT_CHECK(!started_, "TunerService::Start called twice");
  started_ = true;
  const size_t threads = options_.analysis_threads == 0
                             ? WorkerPool::DefaultThreads()
                             : options_.analysis_threads;
  if (threads > 1) {
    // The analysis worker participates in every ParallelFor, so a pool of
    // threads - 1 gives exactly `threads` concurrent analysis workers.
    analysis_pool_ = std::make_unique<WorkerPool>(threads - 1);
    tuner_->SetAnalysisPool(analysis_pool_.get());
  }
  metrics_.SetAnalysisThreads(threads);
  Publish();  // initial configuration, analyzed == 0
  worker_ = std::thread([this] { WorkerLoop(); });
}

void TunerService::StartDetached(WorkerPool* analysis_pool) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  WFIT_CHECK(!started_, "TunerService started twice");
  started_ = true;
  detached_ = true;
  if (analysis_pool != nullptr) {
    tuner_->SetAnalysisPool(analysis_pool);
  }
  // The draining thread participates in every ParallelFor, so the
  // effective analysis width is the shared pool plus one.
  metrics_.SetAnalysisThreads(
      analysis_pool == nullptr ? 1 : analysis_pool->num_threads() + 1);
  Publish();  // initial configuration (recovered state after Open)
}

void TunerService::Shutdown() {
  queue_.Close();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_) return;
  if (detached_) {
    if (finished_) return;
    finished_ = true;
    while (ProcessBatch() > 0) {
    }
    DrainTail(/*apply_all_feedback=*/options_.checkpoint_on_shutdown,
              /*force_checkpoint=*/options_.checkpoint_on_shutdown);
  } else if (!joined_) {
    worker_.join();
    joined_ = true;
  }
}

void TunerService::FinishDetached() { Shutdown(); }

size_t TunerService::ProcessBatch() {
  return ProcessBatch(DynamicBatchLimit(), /*max_bytes=*/0);
}

size_t TunerService::ProcessBatch(size_t max_statements, size_t max_bytes) {
  max_statements = std::clamp<size_t>(max_statements, 1, options_.max_batch);
  std::vector<Statement> batch;
  batch.reserve(max_statements);
  std::vector<IngestMeta> meta;
  meta.reserve(max_statements);
  uint64_t first_seq = 0;
  size_t n = queue_.TryPopBatch(&batch, max_statements, &first_seq, &meta,
                                max_bytes);
  if (n > 0) AnalyzeBatch(batch, first_seq, n, meta);
  return n;
}

size_t TunerService::DynamicBatchLimit() const {
  if (!options_.dynamic_batching) return options_.max_batch;
  // Backlog-proportional admission: a short queue gets a short batch (the
  // statement at its head waits less behind batch-mates), a deep queue
  // gets full batches for drain throughput. Once the observed queue-wait
  // p99 blows the budget, latency is already lost — open fully.
  size_t limit = std::clamp<size_t>(queue_.depth(), 1, options_.max_batch);
  if (options_.batch_p99_budget_ms > 0.0 &&
      metrics_.StageQuantileUpperUs(obs::Stage::kQueueWait, 0.99) >
          options_.batch_p99_budget_ms * 1000.0) {
    limit = options_.max_batch;
  }
  return limit;
}

TunerService::PendingVotes TunerService::CloseForEviction() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    WFIT_CHECK(detached_, "CloseForEviction requires a detached service");
    WFIT_CHECK(!finished_, "CloseForEviction on a finished service");
    finished_ = true;
  }
  queue_.Close();
  while (ProcessBatch() > 0) {
  }
  // Only votes that are already due: ASAP votes plus votes keyed to
  // statements this incarnation analyzed. Future-keyed votes must survive
  // the eviction un-applied.
  const uint64_t done = analyzed();
  bool fed = ApplyFeedback(done, /*inclusive=*/false, /*with_asap=*/true,
                           /*boundary=*/done, /*post=*/true);
  if (fed) Publish();
  PendingVotes future;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    future.swap(pending_feedback_);
  }
  DrainTail(/*apply_all_feedback=*/false, /*force_checkpoint=*/true);
  return future;
}

bool TunerService::Submit(Statement stmt) {
  if (!queue_.Push(std::move(stmt))) return false;
  metrics_.OnSubmit();
  return true;
}

bool TunerService::TrySubmit(Statement stmt) {
  if (!queue_.TryPush(std::move(stmt))) {
    metrics_.OnSubmitRejected();
    return false;
  }
  metrics_.OnSubmit();
  return true;
}

bool TunerService::SubmitAt(uint64_t seq, Statement stmt) {
  if (!queue_.PushAt(seq, std::move(stmt))) return false;
  metrics_.OnSubmit();
  return true;
}

PushAtResult TunerService::TrySubmitAt(uint64_t seq, Statement stmt) {
  PushAtResult result = queue_.TryPushAt(seq, std::move(stmt));
  switch (result) {
    case PushAtResult::kAccepted:
      metrics_.OnSubmit();
      break;
    case PushAtResult::kWouldBlock:
      metrics_.OnSubmitRejected();
      break;
    case PushAtResult::kDuplicate:
    case PushAtResult::kClosed:
      break;
  }
  return result;
}

PushAtResult TunerService::SubmitWithDeadline(
    Statement stmt, std::chrono::steady_clock::time_point deadline) {
  PushAtResult result = queue_.PushWithDeadline(std::move(stmt), deadline);
  if (result == PushAtResult::kAccepted) {
    metrics_.OnSubmit();
  } else if (result == PushAtResult::kWouldBlock) {
    metrics_.OnSubmitRejected();
  }
  return result;
}

PushAtResult TunerService::SubmitAtWithDeadline(
    uint64_t seq, Statement stmt,
    std::chrono::steady_clock::time_point deadline) {
  PushAtResult result =
      queue_.PushAtWithDeadline(seq, std::move(stmt), deadline);
  if (result == PushAtResult::kAccepted) {
    metrics_.OnSubmit();
  } else if (result == PushAtResult::kWouldBlock) {
    metrics_.OnSubmitRejected();
  }
  return result;
}

void TunerService::Feedback(IndexSet f_plus, IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  asap_feedback_.emplace_back(std::move(f_plus), std::move(f_minus));
}

void TunerService::FeedbackAfter(uint64_t after_seq, IndexSet f_plus,
                                 IndexSet f_minus) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  pending_feedback_.emplace(after_seq,
                            std::make_pair(std::move(f_plus),
                                           std::move(f_minus)));
}

std::shared_ptr<const RecommendationSnapshot> TunerService::Recommendation()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool TunerService::WaitUntilAnalyzed(uint64_t n) const {
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [&] { return analyzed_ >= n || worker_done_; });
  return analyzed_ >= n;
}

uint64_t TunerService::analyzed() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return analyzed_;
}

MetricsSnapshot TunerService::Metrics() const {
  MetricsSnapshot s = metrics_.Snapshot();
  s.queue_depth = queue_.depth();
  s.queue_capacity = queue_.capacity();
  s.queue_high_water = queue_.high_water();
  s.push_waits = queue_.push_waits();
  return s;
}

std::vector<IndexSet> TunerService::History() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return history_;
}

bool TunerService::ApplyFeedback(uint64_t seq, bool inclusive,
                                 bool with_asap, uint64_t boundary,
                                 bool post) {
  // Collect under the lock, apply outside it: Tuner::Feedback can be
  // expensive and producers must not block on it when casting votes.
  std::vector<std::pair<IndexSet, IndexSet>> to_apply;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    if (with_asap) {
      to_apply.swap(asap_feedback_);
    }
    auto end = inclusive ? pending_feedback_.upper_bound(seq)
                         : pending_feedback_.lower_bound(seq);
    for (auto it = pending_feedback_.begin(); it != end; ++it) {
      to_apply.push_back(std::move(it->second));
    }
    pending_feedback_.erase(pending_feedback_.begin(), end);
  }
  for (auto& [f_plus, f_minus] : to_apply) {
    // WAL: the vote's effect boundary hits the journal before the vote
    // mutates the tuner, so replay applies it at exactly this point.
    JournalAppend([&](persist::JournalWriter* j) {
      return j->AppendFeedback(boundary, post, f_plus, f_minus);
    });
    tuner_->Feedback(f_plus, f_minus);
    metrics_.OnFeedback();
  }
  return !to_apply.empty();
}

void TunerService::AdoptEpochsUpTo(uint64_t seq) {
  bool changed = false;
  while (pending_epoch_cursor_ < pending_epochs_.size() &&
         pending_epochs_[pending_epoch_cursor_].seq <= seq) {
    const PendingEpoch& e = pending_epochs_[pending_epoch_cursor_++];
    overload_mode_ = e.mode;
    sample_rate_ = e.rate;
    if (e.seed != 0) sample_seed_ = e.seed;
    changed = true;
  }
  if (pending_epoch_cursor_ == pending_epochs_.size() &&
      !pending_epochs_.empty()) {
    pending_epochs_.clear();
    pending_epoch_cursor_ = 0;
  }
  // Adopted epochs were already counted as transitions when first
  // journaled; only the gauges move.
  if (changed) metrics_.SetOverloadState(overload_mode_, sample_rate_);
}

void TunerService::MaybeTransition(uint64_t first_seq) {
  if (!options_.overload.enabled) return;
  const double fill = static_cast<double>(queue_.depth()) /
                      static_cast<double>(queue_.capacity());
  uint8_t mode = overload_mode_;
  double rate = sample_rate_;
  if (fill >= options_.overload.high_watermark) {
    // One degradation step per batch: shed duplicates first (cheap, only
    // redundant evidence is lost), then sample, then tighten the rate.
    if (mode == 0) {
      mode = 1;
    } else if (mode == 1) {
      mode = 2;
      rate = std::max(options_.overload.sample_floor, 0.5);
    } else {
      rate = std::max(options_.overload.sample_floor, rate * 0.5);
    }
  } else if (fill <= options_.overload.low_watermark) {
    // Hysteresis: recovery only below the low watermark, one step per
    // batch, through the same states in reverse.
    if (mode == 2) {
      rate = std::min(1.0, rate * 2.0);
      if (rate >= 1.0) {
        rate = 1.0;
        mode = 1;
      }
    } else if (mode == 1) {
      mode = 0;
    }
  }
  if (mode == overload_mode_ && rate == sample_rate_) return;
  overload_mode_ = mode;
  sample_rate_ = rate;
  // The epoch hits the journal before this batch's statements are
  // analyzed (same pre-analysis fsync), so replay always knows the mode
  // every durable statement was decided under.
  JournalAppend([&](persist::JournalWriter* j) {
    return j->AppendEpoch(first_seq, mode, rate, sample_seed_);
  });
  metrics_.OnOverloadTransition(mode, rate);
  obs::RecordInstant("overload.transition", OverloadModeName(mode));
  obs::Log(obs::LogLevel::kWarn, "overload.transition")
      .Str("mode", OverloadModeName(mode))
      .Dbl("sample_rate", rate)
      .Dbl("queue_fill", fill)
      .U64("seq", first_seq);
}

bool TunerService::OverloadDecide(uint64_t seq, const Statement& stmt,
                                  bool* shed) {
  *shed = false;
  if (overload_mode_ == 1) {
    const uint64_t fp = stmt.Fingerprint();
    for (uint64_t seen : dup_window_) {
      if (seen == fp) {
        *shed = true;
        return false;
      }
    }
  } else if (overload_mode_ == 2) {
    // Uniform sampling, deliberately without the duplicate filter: the
    // 1/rate weight is only an unbiased estimator when every arrival has
    // the same keep probability.
    if (SampleUnit(sample_seed_, seq) >= sample_rate_) return false;
  }
  // The duplicate window tracks kept statements in every mode, so
  // entering Shedding starts with a warm window.
  if (options_.overload.dup_window > 0) {
    dup_window_.push_back(stmt.Fingerprint());
    while (dup_window_.size() > options_.overload.dup_window) {
      dup_window_.pop_front();
    }
  }
  return true;
}

void TunerService::ApplyStatementWeight() {
  const double w = overload_mode_ == 2 ? 1.0 / sample_rate_ : 1.0;
  if (w != current_weight_) {
    tuner_->SetStatementWeight(w);
    current_weight_ = w;
  }
}

bool TunerService::ApplyAllFeedback() {
  return ApplyFeedback(std::numeric_limits<uint64_t>::max(),
                       /*inclusive=*/true, /*with_asap=*/true,
                       /*boundary=*/analyzed_, /*post=*/true);
}

template <typename Fn>
void TunerService::JournalAppend(Fn&& fn) {
  if (journal_ == nullptr) return;
  Status st = fn(journal_.get());
  if (!st.ok()) {
    // Durability degrades but the service stays up; a stale journal tail
    // simply bounds how far a future recovery can replay.
    obs::Log(obs::LogLevel::kError, "journal.write_failed")
        .Str("error", st.ToString());
    metrics_.OnJournalFailure();
    CloseJournal();
    journal_dirty_ = false;
    return;
  }
  journal_dirty_ = true;
}

void TunerService::CloseJournal() {
  if (journal_ == nullptr) return;
  if (options_.fsync_batcher != nullptr && journal_->is_open()) {
    options_.fsync_batcher->Forget(journal_->fd());
  }
  journal_->Close();
  journal_.reset();
}

void TunerService::SyncJournalIfDirty() {
  if (journal_ == nullptr || !journal_dirty_) return;
  if (!options_.sync_journal) {
    journal_dirty_ = false;
    return;
  }
  Status st;
  if (options_.fsync_batcher != nullptr) {
    // Group commit: flush userspace buffers, then share one kernel flush
    // with every other shard that syncs in this drain window.
    st = journal_->Flush();
    if (st.ok()) {
      st = options_.fsync_batcher->SyncRequired(journal_->fd());
      if (st.ok()) ++batched_syncs_;
    }
  } else {
    st = journal_->Sync();
  }
  if (!st.ok()) {
    obs::Log(obs::LogLevel::kError, "journal.fsync_failed")
        .Str("error", st.ToString());
    metrics_.OnJournalFailure();
    CloseJournal();
  }
  journal_dirty_ = false;
}

void TunerService::TailSyncJournal() {
  if (journal_ == nullptr || !journal_dirty_ || !options_.sync_journal) {
    SyncJournalIfDirty();
    return;
  }
  if (options_.fsync_batcher == nullptr) {
    SyncJournalIfDirty();
    return;
  }
  // The tail of a batch only needs durability before the NEXT analysis
  // depends on it — which the next batch's front barrier (a required
  // sync) already guarantees. Defer to the batcher's window and leave the
  // journal marked dirty so that barrier stays required.
  Status st = journal_->Flush();
  if (!st.ok()) {
    obs::Log(obs::LogLevel::kError, "journal.fsync_failed")
        .Str("error", st.ToString());
    metrics_.OnJournalFailure();
    CloseJournal();
    journal_dirty_ = false;
    return;
  }
  options_.fsync_batcher->SyncDeferred(journal_->fd());
}

void TunerService::MaybeCheckpoint(bool force) {
  if (journal_ == nullptr || pool_ == nullptr) return;
  const uint64_t analyzed = analyzed_;  // worker thread owns all writes
  if (have_checkpoint_ && analyzed == last_checkpoint_analyzed_) return;
  if (!force &&
      analyzed - last_checkpoint_analyzed_ <
          options_.checkpoint_every_statements) {
    return;
  }
  // The snapshot's journal_lsn must cover everything applied so far, and
  // the covered records must be durable before the snapshot supersedes
  // them.
  SyncJournalIfDirty();
  if (journal_ == nullptr) return;  // sync failure disabled persistence
  persist::SnapshotMeta meta;
  meta.analyzed = analyzed;
  meta.journal_lsn = journal_->lsn();
  meta.overload.mode = overload_mode_;
  meta.overload.sample_rate = sample_rate_;
  meta.overload.sample_seed = sample_seed_;
  meta.overload.dup_window.assign(dup_window_.begin(), dup_window_.end());
  obs::SpanGuard span("checkpoint");
  obs::StageTimer timer(obs::Stage::kCheckpointWrite);
  StatusOr<persist::DeltaCheckpointer::Result> result =
      checkpointer_.Write(options_.checkpoint_dir, *tuner_, *pool_, meta);
  if (!result.ok()) {
    metrics_.OnCheckpointFailure();
    obs::Log(obs::LogLevel::kWarn, "checkpoint.failed")
        .U64("analyzed", analyzed)
        .Str("error", result.status().ToString());
    return;
  }
  last_checkpoint_analyzed_ = analyzed;
  have_checkpoint_ = true;
  metrics_.OnCheckpoint(analyzed, result->bytes, UnixSeconds(),
                        result->wrote_full);
  if (result->wrote_full && result->cover_lsn > 0) {
    MaybeCompactJournal(result->cover_lsn);
  }
}

void TunerService::MaybeCompactJournal(uint64_t cover_lsn) {
  namespace fs = std::filesystem;
  if (!options_.compact_journal || journal_ == nullptr) return;
  if (journal_->bytes() < options_.journal_compact_min_bytes) return;
  const std::string path =
      (fs::path(options_.checkpoint_dir) / kJournalFile).string();
  // The rewrite needs the writer closed (and its fd forgotten from any
  // batcher) — everything durable already, since a full checkpoint just
  // synced.
  const uint64_t old_bytes = journal_->bytes();
  CloseJournal();
  StatusOr<persist::CompactionResult> compacted =
      persist::CompactJournal(path, cover_lsn);
  if (!compacted.ok()) {
    obs::Log(obs::LogLevel::kWarn, "journal.compact_failed")
        .Str("error", compacted.status().ToString());
    // The original file is intact (compaction replaces it only via
    // rename); reopen by re-reading its tail.
    StatusOr<persist::JournalReadResult> read = persist::ReadJournal(path);
    if (read.ok()) {
      journal_ = std::make_unique<persist::JournalWriter>();
      Status st = journal_->Open(path, read->valid_bytes,
                                 read->base_lsn + read->records.size());
      if (!st.ok()) journal_.reset();
    }
    if (journal_ == nullptr) metrics_.OnJournalFailure();
    return;
  }
  journal_ = std::make_unique<persist::JournalWriter>();
  Status st = journal_->Open(path, compacted->valid_bytes,
                             compacted->base_lsn + compacted->record_count);
  if (!st.ok()) {
    obs::Log(obs::LogLevel::kError, "journal.reopen_failed")
        .Str("error", st.ToString());
    metrics_.OnJournalFailure();
    journal_.reset();
    return;
  }
  metrics_.OnJournalCompaction(old_bytes > compacted->new_bytes
                                   ? old_bytes - compacted->new_bytes
                                   : 0);
  obs::Log(obs::LogLevel::kInfo, "journal.compacted")
      .U64("old_bytes", old_bytes)
      .U64("new_bytes", compacted->new_bytes)
      .U64("dropped_records", compacted->dropped_records)
      .U64("base_lsn", compacted->base_lsn);
}

void TunerService::PushJournalMetrics() {
  if (journal_ == nullptr) return;
  metrics_.SetJournal(journal_->lsn(), journal_->bytes(),
                      journal_->syncs() + batched_syncs_);
}

void TunerService::Publish() {
  auto snapshot = std::make_shared<RecommendationSnapshot>();
  snapshot->configuration = tuner_->Recommendation();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    snapshot->analyzed = analyzed_;
  }
  metrics_.OnPublish();
  snapshot->version = metrics_.snapshot_version();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

void TunerService::WorkerLoop() {
  std::vector<Statement> batch;
  batch.reserve(options_.max_batch);
  std::vector<IngestMeta> meta;
  meta.reserve(options_.max_batch);
  while (true) {
    batch.clear();
    meta.clear();
    uint64_t first_seq = 0;
    size_t n = queue_.PopBatch(&batch, options_.max_batch, &first_seq, &meta);
    if (n == 0) break;  // closed and drained
    AnalyzeBatch(batch, first_seq, n, meta);
  }
  // Drain path: votes cast after the final statement still take effect —
  // except in crash-realistic mode (checkpoint_on_shutdown=false), where
  // applying a future-keyed vote early would journal it at a boundary a
  // real crash could never have reached; it dies un-applied instead, and
  // recovery re-pins it.
  DrainTail(/*apply_all_feedback=*/options_.checkpoint_on_shutdown,
            /*force_checkpoint=*/options_.checkpoint_on_shutdown);
}

void TunerService::AnalyzeBatch(std::vector<Statement>& batch,
                                uint64_t first_seq, size_t n,
                                const std::vector<IngestMeta>& meta) {
  // Stage timers anywhere below this frame (IBG build on pool threads,
  // what-if probes, checkpoint writes) attribute to this service.
  obs::ScopedStageSink stage_sink(&metrics_);
  metrics_.OnBatch(n);
  // Epochs journaled by a previous incarnation for this (re-queued)
  // intake take effect before any live transition is considered, so live
  // and replayed decisions always agree.
  AdoptEpochsUpTo(first_seq);
  MaybeTransition(first_seq);
  const uint64_t pop_ns = obs::NowNs();
  // WAL spans record under the first statement's submitting trace (the
  // one fsync covers the whole batch).
  obs::ScopedTraceContext batch_ctx(meta.empty() ? obs::TraceContext{}
                                                 : meta[0].ctx);
  {
    obs::SpanGuard wal_span("wal.append");
    // Write-ahead: the whole batch hits the journal (one fsync) before any
    // of it is analyzed, so a crash can lose unanalyzed intake but never
    // analyzed statements. Statements requeued by recovery are already in
    // the journal and are not re-appended.
    for (size_t i = 0; i < n; ++i) {
      const uint64_t seq = first_seq + i;
      if (seq < journal_stmt_skip_until_) continue;
      JournalAppend([&](persist::JournalWriter* j) {
        return j->AppendStatement(seq, batch[i]);
      });
    }
  }
  {
    // One fsync covers the whole batch: every statement analyzed below is
    // already durable.
    obs::SpanGuard fsync_span("wal.fsync");
    SyncJournalIfDirty();
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t seq = first_seq + i;
    const IngestMeta stmt_meta = i < meta.size() ? meta[i] : IngestMeta{};
    if (stmt_meta.enqueue_ns != 0 && pop_ns > stmt_meta.enqueue_ns) {
      obs::RecordStage(obs::Stage::kQueueWait, pop_ns - stmt_meta.enqueue_ns);
    }
    // The submitting RPC's context makes this statement's analysis spans
    // children of the client's submit span across the process boundary.
    obs::ScopedTraceContext stmt_ctx(stmt_meta.ctx);
    // Votes that arrived since the last boundary (ASAP, or keyed to an
    // already-analyzed statement) apply before this statement — i.e. at
    // boundary `seq`.
    bool fed = ApplyFeedback(seq, /*inclusive=*/false, /*with_asap=*/true,
                             /*boundary=*/seq, /*post=*/false);
    // Overload decision at analysis time: a dropped statement keeps its
    // WAL record, vote slots, analyzed marker and publication — only
    // AnalyzeQuery is skipped, so contiguity and exactly-once hold while
    // the actual bottleneck is relieved.
    AdoptEpochsUpTo(seq);
    bool keep = true;
    bool shed = false;
    if (options_.overload.enabled || overload_mode_ != 0) {
      keep = OverloadDecide(seq, batch[i], &shed);
    }
    Clock::time_point start = Clock::now();
    double analyze_us = 0.0;
    if (keep) {
      ApplyStatementWeight();
      {
        obs::SpanGuard analyze_span("analyze");
        if (analyze_span.trace_id() != 0) {
          analyze_span.SetDetail("seq " + std::to_string(seq));
        }
        tuner_->AnalyzeQuery(batch[i]);
      }
      analyze_us = MicrosSince(start);
      metrics_.OnAnalyzed(analyze_us);
      metrics_.SetRepartitions(tuner_->RepartitionCount());
      WhatIfCacheCounters cache = tuner_->WhatIfCache();
      metrics_.SetWhatIfCache(cache.hits, cache.misses, cache.cross_hits);
    } else {
      metrics_.OnOverloadDrop(shed);
      obs::RecordInstant(shed ? "overload.shed" : "overload.sample_drop",
                         "seq " + std::to_string(seq));
    }
    // Deterministic interleave: votes keyed to this statement apply
    // right after it, before its recommendation is recorded.
    fed |= ApplyFeedback(seq, /*inclusive=*/true, /*with_asap=*/false,
                         /*boundary=*/seq + 1, /*post=*/true);
    (void)fed;
    // The marker seals this statement's effects (its votes precede it in
    // the journal): recovery replays the trajectory only through the
    // last contiguous durable marker, so a crash can never replay past
    // a boundary whose vote was still in memory. Synced once per batch —
    // an unsynced tail rolls the recovery point back, never forward.
    JournalAppend([&](persist::JournalWriter* j) {
      return j->AppendAnalyzed(seq);
    });
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      analyzed_ = seq + 1;
    }
    if (options_.record_history) {
      std::lock_guard<std::mutex> lock(history_mu_);
      history_.push_back(tuner_->Recommendation());
    }
    {
      obs::SpanGuard publish_span("publish");
      Publish();
    }
    progress_cv_.notify_all();
    if (options_.slow_statement_ms > 0 && stmt_meta.enqueue_ns != 0) {
      const uint64_t end_ns = obs::NowNs();
      const uint64_t e2e_ns =
          end_ns > stmt_meta.enqueue_ns ? end_ns - stmt_meta.enqueue_ns : 0;
      if (e2e_ns >= options_.slow_statement_ms * 1000000ull) {
        obs::Log(obs::LogLevel::kWarn, "slow_statement")
            .U64("seq", seq)
            .Dbl("total_ms", static_cast<double>(e2e_ns) / 1e6)
            .Dbl("queue_wait_ms",
                 static_cast<double>(pop_ns - stmt_meta.enqueue_ns) / 1e6)
            .Dbl("analyze_ms", analyze_us / 1e3)
            .U64("batch", n)
            .U64("repartitions", tuner_->RepartitionCount());
      }
    }
  }
  // Trailing votes of the batch become durable before the consumer moves
  // on — immediately without a batcher, within the next drain window with
  // one (the next batch's front barrier upgrades the guarantee before any
  // further analysis depends on it).
  TailSyncJournal();
  MaybeCheckpoint(/*force=*/false);
  PushJournalMetrics();
}

void TunerService::DrainTail(bool apply_all_feedback, bool force_checkpoint) {
  if (apply_all_feedback && ApplyAllFeedback()) Publish();
  SyncJournalIfDirty();
  MaybeCheckpoint(force_checkpoint);
  PushJournalMetrics();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    worker_done_ = true;
  }
  progress_cv_.notify_all();  // waiters must not hang once we stop
}

}  // namespace wfit::service
