// IngestQueue: a bounded, sequence-ordered MPSC queue of workload
// statements — the intake of the online tuning service.
//
// Every statement occupies a slot determined by its sequence number in a
// fixed-size ring. Producers either take a ticket implicitly (Push), which
// sequences statements in arrival order, or supply an explicit sequence
// number (PushAt), which lets N threads replay a partitioned workload while
// the consumer still drains it in the exact original order. The consumer
// (PopBatch) only ever releases the contiguous prefix, so analysis order is
// a pure function of the sequence numbers — never of thread scheduling.
//
// Backpressure: a producer whose sequence number lies more than `capacity`
// slots ahead of the consumer blocks (Push/PushAt) or is refused (TryPush).
// Memory is therefore bounded by `capacity` statements regardless of how
// many producers race.
#ifndef WFIT_SERVICE_INGEST_QUEUE_H_
#define WFIT_SERVICE_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "obs/trace.h"
#include "workload/statement.h"

namespace wfit::service {

/// Rough in-memory footprint of a buffered statement — the unit of the
/// router's per-tenant byte budgets. Deterministic (a pure function of the
/// statement), so byte-capped batch boundaries replay identically.
inline size_t ApproxStatementBytes(const Statement& s) {
  size_t bytes = sizeof(Statement) + s.sql.size();
  for (const StatementTable& t : s.tables) {
    bytes += sizeof(StatementTable) +
             t.predicates.size() * sizeof(ScanPredicate) +
             t.referenced_columns.size() * sizeof(uint32_t);
  }
  bytes += s.joins.size() * sizeof(JoinClause);
  bytes += (s.order_by.size() + s.group_by.size()) * sizeof(ColumnRef);
  bytes += s.set_columns.size() * sizeof(uint32_t);
  return bytes;
}

/// Per-statement intake metadata carried through the queue: when the
/// statement was enqueued (for the queue-wait stage histogram) and the
/// producer's trace context at push time (so the analysis worker's spans
/// stitch under the RPC that submitted the statement).
struct IngestMeta {
  uint64_t enqueue_ns = 0;  // obs::NowNs() at push
  obs::TraceContext ctx;    // zero ids when the producer was untraced
};

/// Outcome of a non-blocking explicit-sequence push (TryPushAt). The
/// network front end maps these onto wire responses: kWouldBlock becomes a
/// retryable Busy, kDuplicate is a success (exactly-once semantics — the
/// statement is already covered), kClosed is a terminal error.
enum class PushAtResult {
  kAccepted,
  kDuplicate,
  kWouldBlock,
  kClosed,
};

class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues with the next implicit sequence number (arrival order).
  /// Blocks while the ring is full. Returns false iff the queue is closed.
  bool Push(Statement stmt);

  /// Enqueues at an explicit sequence number. `seq` must not have been used
  /// before; the contiguous delivery contract requires that every sequence
  /// number below the highest pushed one is eventually pushed exactly once.
  /// Mixing PushAt with implicit Push in one queue is not supported.
  /// Blocks while `seq` is ≥ capacity slots ahead of the consumer. Returns
  /// false iff the queue is closed, `seq` was already delivered, or `seq`
  /// is already buffered (a recovered workload re-submitted by a producer
  /// is dropped, first push wins — the exactly-once contract).
  bool PushAt(uint64_t seq, Statement stmt);

  /// Non-blocking Push: returns false (without enqueueing) if the ring is
  /// full or the queue is closed.
  bool TryPush(Statement stmt);

  /// Non-blocking PushAt: never waits for ring space. kWouldBlock when
  /// `seq` is ≥ capacity slots ahead of the consumer (the caller should
  /// retry later — backpressure without blocking an event loop), kDuplicate
  /// when `seq` was already delivered or is already buffered (dropped,
  /// first push wins), kClosed after Close().
  PushAtResult TryPushAt(uint64_t seq, Statement stmt);

  /// Bounded-wait Push: blocks for ring space at most until `deadline`,
  /// then gives up with kWouldBlock. The implicit ticket taken on entry is
  /// tombstoned on timeout (the consumer drains past it), so a timed-out
  /// producer can never wedge the sequence domain — the fix for the
  /// unbounded full-queue wait that could block a producer forever while
  /// its shard sat evicted.
  PushAtResult PushWithDeadline(Statement stmt,
                                std::chrono::steady_clock::time_point deadline);

  /// Bounded-wait PushAt: same give-up-at-deadline semantics, but the
  /// caller owns `seq` and may retry it later, so no tombstone is left
  /// (identical contract to TryPushAt's kWouldBlock).
  PushAtResult PushAtWithDeadline(
      uint64_t seq, Statement stmt,
      std::chrono::steady_clock::time_point deadline);

  /// Repositions the sequence domain so the first delivered statement is
  /// `seq` (recovery: statements below `seq` were already analyzed from
  /// the journal). Must be called before any push.
  void StartAt(uint64_t seq);

  /// Blocks until at least one statement is deliverable or the queue is
  /// closed and fully drained. Appends up to `max_batch` statements of the
  /// contiguous sequence prefix to `*out` and returns the count; returns 0
  /// only at end-of-stream. The sequence number of the first popped
  /// statement is written to `*first_seq` (if non-null).
  /// When `meta` is non-null, one IngestMeta per popped statement is
  /// appended to it (parallel to `*out`).
  size_t PopBatch(std::vector<Statement>* out, size_t max_batch,
                  uint64_t* first_seq = nullptr,
                  std::vector<IngestMeta>* meta = nullptr);

  /// Non-blocking PopBatch for externally-scheduled consumers (the tenant
  /// router's shared drain threads): pops whatever contiguous prefix is
  /// deliverable right now, up to `max_batch`, and returns the count — 0
  /// when nothing is deliverable yet (a predecessor sequence is missing)
  /// or the queue is drained.
  size_t TryPopBatch(std::vector<Statement>* out, size_t max_batch,
                     uint64_t* first_seq = nullptr,
                     std::vector<IngestMeta>* meta = nullptr,
                     size_t max_bytes = 0);

  /// True when TryPopBatch would deliver at least one statement now.
  bool CanPop() const;

  /// Closes the intake: subsequent pushes fail, and PopBatch drains what
  /// remains of the contiguous prefix, then reports end-of-stream.
  void Close();

  size_t capacity() const { return capacity_; }
  bool closed() const;

  /// Number of statements currently buffered (including any non-contiguous
  /// ones waiting for a predecessor).
  size_t depth() const;
  /// Maximum depth ever observed.
  size_t high_water() const;
  /// Blocking pushes that had to wait for space at least once.
  uint64_t push_waits() const;
  uint64_t total_pushed() const;
  /// Next sequence number the consumer will deliver.
  uint64_t next_pop_seq() const;

 private:
  struct Slot {
    Statement stmt;
    IngestMeta meta;
  };
  bool PushLocked(std::unique_lock<std::mutex>& lock, uint64_t seq,
                  Statement&& stmt, bool drop_duplicate,
                  const std::chrono::steady_clock::time_point* deadline =
                      nullptr,
                  bool abandon_on_timeout = false, bool* timed_out = nullptr);
  size_t PopBatchLocked(std::vector<Statement>* out, size_t max_batch,
                        uint64_t* first_seq, std::vector<IngestMeta>* meta,
                        size_t max_bytes = 0);
  bool SlotReady(uint64_t seq) const {
    return ring_[seq % capacity_].has_value();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::optional<Slot>> ring_;
  uint64_t next_ticket_ = 0;   // next implicit sequence number
  uint64_t next_pop_seq_ = 0;  // consumer cursor
  size_t buffered_ = 0;        // slots currently occupied
  /// Sequence numbers whose push was abandoned — at Close(), or when a
  /// deadline push timed out after taking its implicit ticket. The
  /// consumer drains past them.
  std::set<uint64_t> abandoned_;
  bool closed_ = false;
  // Stats.
  size_t high_water_ = 0;
  uint64_t push_waits_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace wfit::service

#endif  // WFIT_SERVICE_INGEST_QUEUE_H_
