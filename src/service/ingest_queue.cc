#include "service/ingest_queue.h"

#include "common/check.h"

namespace wfit::service {

IngestQueue::IngestQueue(size_t capacity) : capacity_(capacity) {
  WFIT_CHECK(capacity > 0, "IngestQueue capacity must be positive");
  ring_.resize(capacity);
}

bool IngestQueue::PushLocked(std::unique_lock<std::mutex>& lock, uint64_t seq,
                             Statement&& stmt, bool drop_duplicate,
                             const std::chrono::steady_clock::time_point*
                                 deadline,
                             bool abandon_on_timeout, bool* timed_out) {
  // A producer may enter while its slot is still occupied by an
  // undelivered predecessor lap; wait until the slot's lap is ours.
  bool waited = false;
  while (!closed_ && seq >= next_pop_seq_ + capacity_) {
    waited = true;
    if (deadline == nullptr) {
      not_full_.wait(lock);
      continue;
    }
    if (not_full_.wait_until(lock, *deadline) == std::cv_status::timeout &&
        !closed_ && seq >= next_pop_seq_ + capacity_) {
      ++push_waits_;
      if (timed_out != nullptr) *timed_out = true;
      if (abandon_on_timeout) {
        // The implicit ticket is already assigned; tombstone it so the
        // consumer drains past the hole instead of stalling forever.
        abandoned_.insert(seq);
        not_empty_.notify_all();
      }
      return false;
    }
  }
  if (closed_) {
    // The ticket was already assigned; leave a tombstone so the consumer
    // can drain past the hole instead of stranding later accepted pushes.
    abandoned_.insert(seq);
    not_empty_.notify_all();
    return false;
  }
  if (waited) ++push_waits_;
  if (ring_[seq % capacity_].has_value()) {
    // Within the window the slot can only hold `seq` itself. Explicit
    // sequence numbers tolerate duplicates (recovery requeues a journaled
    // suffix that producers may also resubmit — first wins); implicit
    // ticketed pushes cannot collide, so there it is a caller bug.
    WFIT_CHECK(drop_duplicate, "IngestQueue: duplicate sequence number");
    return false;
  }
  Slot slot;
  slot.stmt = std::move(stmt);
  slot.meta.enqueue_ns = obs::NowNs();
  slot.meta.ctx = obs::CurrentTraceContext();
  ring_[seq % capacity_] = std::move(slot);
  ++buffered_;
  ++total_pushed_;
  if (buffered_ > high_water_) high_water_ = buffered_;
  if (seq == next_pop_seq_) not_empty_.notify_one();
  return true;
}

bool IngestQueue::Push(Statement stmt) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return false;
  // Take the ticket up front so concurrent implicit pushes get distinct
  // slots; the blocked producer keeps its place in sequence order.
  uint64_t seq = next_ticket_++;
  return PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/false);
}

bool IngestQueue::PushAt(uint64_t seq, Statement stmt) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return false;
  // An already-delivered sequence number is refused, not re-queued: after
  // recovery a producer may replay a workload prefix the journal already
  // covered, and exactly-once analysis means dropping those here.
  if (seq < next_pop_seq_) return false;
  if (seq >= next_ticket_) next_ticket_ = seq + 1;
  return PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/true);
}

void IngestQueue::StartAt(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  WFIT_CHECK(total_pushed_ == 0 && buffered_ == 0,
             "IngestQueue::StartAt requires an unused queue");
  next_ticket_ = seq;
  next_pop_seq_ = seq;
}

bool IngestQueue::TryPush(Statement stmt) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || next_ticket_ >= next_pop_seq_ + capacity_) return false;
  uint64_t seq = next_ticket_++;
  return PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/false);
}

PushAtResult IngestQueue::TryPushAt(uint64_t seq, Statement stmt) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushAtResult::kClosed;
  if (seq < next_pop_seq_) return PushAtResult::kDuplicate;
  if (seq >= next_pop_seq_ + capacity_) return PushAtResult::kWouldBlock;
  if (ring_[seq % capacity_].has_value()) return PushAtResult::kDuplicate;
  if (seq >= next_ticket_) next_ticket_ = seq + 1;
  // Preconditions above guarantee PushLocked cannot wait or collide.
  PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/true);
  return PushAtResult::kAccepted;
}

PushAtResult IngestQueue::PushWithDeadline(
    Statement stmt, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushAtResult::kClosed;
  uint64_t seq = next_ticket_++;
  bool timed_out = false;
  if (PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/false,
                 &deadline, /*abandon_on_timeout=*/true, &timed_out)) {
    return PushAtResult::kAccepted;
  }
  return timed_out ? PushAtResult::kWouldBlock : PushAtResult::kClosed;
}

PushAtResult IngestQueue::PushAtWithDeadline(
    uint64_t seq, Statement stmt,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushAtResult::kClosed;
  if (seq < next_pop_seq_) return PushAtResult::kDuplicate;
  if (seq >= next_ticket_) next_ticket_ = seq + 1;
  bool timed_out = false;
  if (PushLocked(lock, seq, std::move(stmt), /*drop_duplicate=*/true,
                 &deadline, /*abandon_on_timeout=*/false, &timed_out)) {
    return PushAtResult::kAccepted;
  }
  if (timed_out) return PushAtResult::kWouldBlock;
  return closed_ ? PushAtResult::kClosed : PushAtResult::kDuplicate;
}

size_t IngestQueue::PopBatch(std::vector<Statement>* out, size_t max_batch,
                             uint64_t* first_seq,
                             std::vector<IngestMeta>* meta) {
  WFIT_CHECK(out != nullptr && max_batch > 0,
             "PopBatch requires an output vector and a positive batch size");
  std::unique_lock<std::mutex> lock(mu_);
  // Like CanPop, look past a contiguous run of tombstones: a statement
  // accepted behind an abandoned ticket must still wake the consumer.
  not_empty_.wait(lock, [&] {
    uint64_t seq = next_pop_seq_;
    while (abandoned_.count(seq) != 0) ++seq;
    return SlotReady(seq) || closed_;
  });
  return PopBatchLocked(out, max_batch, first_seq, meta);
}

size_t IngestQueue::TryPopBatch(std::vector<Statement>* out, size_t max_batch,
                                uint64_t* first_seq,
                                std::vector<IngestMeta>* meta,
                                size_t max_bytes) {
  WFIT_CHECK(out != nullptr && max_batch > 0,
             "TryPopBatch requires an output vector and a positive batch "
             "size");
  std::unique_lock<std::mutex> lock(mu_);
  return PopBatchLocked(out, max_batch, first_seq, meta, max_bytes);
}

size_t IngestQueue::PopBatchLocked(std::vector<Statement>* out,
                                   size_t max_batch, uint64_t* first_seq,
                                   std::vector<IngestMeta>* meta,
                                   size_t max_bytes) {
  size_t popped = 0;
  size_t popped_bytes = 0;
  while (popped < max_batch) {
    // Tombstones from pushes abandoned at close are skipped, so accepted
    // statements behind them still drain. Only at the start of a batch:
    // delivered batches stay sequence-contiguous.
    if (auto it = abandoned_.find(next_pop_seq_); it != abandoned_.end()) {
      if (popped > 0) break;
      abandoned_.erase(it);
      ++next_pop_seq_;
      continue;
    }
    if (!SlotReady(next_pop_seq_)) break;
    Slot& slot = *ring_[next_pop_seq_ % capacity_];
    // Byte budget: stop before the statement that would exceed it, but
    // always deliver at least one so a single oversized statement cannot
    // stall the shard.
    if (max_bytes > 0 && popped > 0) {
      popped_bytes += ApproxStatementBytes(slot.stmt);
      if (popped_bytes > max_bytes) break;
    }
    if (popped == 0 && first_seq != nullptr) *first_seq = next_pop_seq_;
    out->push_back(std::move(slot.stmt));
    if (meta != nullptr) meta->push_back(slot.meta);
    ring_[next_pop_seq_ % capacity_].reset();
    ++next_pop_seq_;
    --buffered_;
    ++popped;
  }
  if (popped > 0) not_full_.notify_all();
  return popped;
}

bool IngestQueue::CanPop() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Tombstones are skippable, so look past a contiguous run of them.
  uint64_t seq = next_pop_seq_;
  while (abandoned_.count(seq) != 0) ++seq;
  return buffered_ > 0 && SlotReady(seq);
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_;
}

size_t IngestQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t IngestQueue::push_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return push_waits_;
}

uint64_t IngestQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

uint64_t IngestQueue::next_pop_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_pop_seq_;
}

}  // namespace wfit::service
