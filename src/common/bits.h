// Helpers for configurations represented as bitmasks. Within a stable
// partition part, an index configuration is a subset of at most ~20 indices
// and is stored as a uint32_t mask over the part's member list.
#ifndef WFIT_COMMON_BITS_H_
#define WFIT_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace wfit {

/// A configuration within a part: bit i set <=> the part's i-th index is
/// materialized.
using Mask = uint32_t;

inline int PopCount(Mask m) { return std::popcount(m); }

/// True iff `sub` is a subset of `super`.
inline bool IsSubset(Mask sub, Mask super) { return (sub & ~super) == 0; }

/// Index of the lowest set bit; undefined for m == 0.
inline int LowestBit(Mask m) { return std::countr_zero(m); }

/// Iterates all submasks of `universe` (including 0 and universe itself).
/// Usage: for (SubmaskIterator it(u); !it.done(); it.Next()) use it.mask();
class SubmaskIterator {
 public:
  explicit SubmaskIterator(Mask universe)
      : universe_(universe), mask_(universe), done_(false) {}

  bool done() const { return done_; }
  Mask mask() const { return mask_; }

  void Next() {
    if (mask_ == 0) {
      done_ = true;
    } else {
      mask_ = (mask_ - 1) & universe_;
    }
  }

 private:
  Mask universe_;
  Mask mask_;
  bool done_;
};

/// Keeps at most `count` lowest set bits of `m` (deterministic truncation
/// for bounded subset enumerations).
inline Mask KeepLowestBits(Mask m, int count) {
  Mask out = 0;
  int kept = 0;
  while (m != 0 && kept < count) {
    Mask low = m & (~m + 1);
    out |= low;
    m &= m - 1;
    ++kept;
  }
  return out;
}

/// The paper's lexicographic tie-breaking order (Appendix B): X is preferred
/// to Y iff the smallest index where they differ belongs to X. Returns true
/// when `x` is strictly preferred to `y`.
inline bool LexPrefers(Mask x, Mask y) {
  Mask diff = x ^ y;
  if (diff == 0) return false;
  Mask low = diff & (~diff + 1);  // lowest differing bit
  return (x & low) != 0;
}

}  // namespace wfit

#endif  // WFIT_COMMON_BITS_H_
