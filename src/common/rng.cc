#include "common/rng.h"

#include <sstream>

namespace wfit {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WFIT_CHECK(lo <= hi, "UniformInt: empty range");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  WFIT_CHECK(lo <= hi, "Uniform: empty range");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    WFIT_CHECK(w >= 0.0, "PickWeighted: negative weight");
    total += w;
  }
  WFIT_CHECK(total > 0.0, "PickWeighted: all weights zero");
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point edge: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(engine_()); }

std::string Rng::SaveState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) return false;
  engine_ = restored;
  return true;
}

}  // namespace wfit
