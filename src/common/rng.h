// Deterministic random number generation. All stochastic components of the
// library (workload generator, choosePartition's randomized search) draw from
// an explicitly seeded Rng so that every experiment is reproducible.
#ifndef WFIT_COMMON_RNG_H_
#define WFIT_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"

namespace wfit {

/// A seeded Mersenne Twister with convenience draws. Not thread-safe; each
/// component owns its own instance.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Index drawn proportionally to non-negative weights. Requires at least
  /// one strictly positive weight.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derive an independent child generator (for per-phase streams).
  Rng Fork();

  /// Exact engine state as text (the standard library's stream format), so
  /// persist/ snapshots can resume the stream at its current position.
  std::string SaveState() const;
  /// Restores a state produced by SaveState. Returns false (leaving the
  /// engine untouched) if `state` does not parse.
  bool LoadState(const std::string& state);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wfit

#endif  // WFIT_COMMON_RNG_H_
