// Status / StatusOr: exception-free error propagation in the style of
// RocksDB's Status and Abseil's StatusOr. Library code returns Status (or
// StatusOr<T>) from any operation that can fail on user input; internal
// invariant violations use WFIT_CHECK (common/check.h) instead.
#ifndef WFIT_COMMON_STATUS_H_
#define WFIT_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace wfit {

/// Error taxonomy for the library. Kept deliberately small; codes are part of
/// the public API contract and are matched by tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Result of an operation that can fail. Cheap to copy in the OK case.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad selectivity".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Accessing the value of a
/// failed StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    WFIT_CHECK(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WFIT_CHECK(ok(), "value() called on failed StatusOr: " +
                         status_.ToString());
    return value_;
  }
  T& value() & {
    WFIT_CHECK(ok(), "value() called on failed StatusOr: " +
                         status_.ToString());
    return value_;
  }
  T&& value() && {
    WFIT_CHECK(ok(), "value() called on failed StatusOr: " +
                         status_.ToString());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagate a non-OK status to the caller.
#define WFIT_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::wfit::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace wfit

#endif  // WFIT_COMMON_STATUS_H_
