// A fixed-size worker pool shared by CPU-bound fan-out work: per-part IBG
// construction and WFA updates inside one statement, and any future
// multi-tenant analysis sharing. Two usage modes:
//
//   Submit(task)        — fire-and-forget FIFO task execution;
//   ParallelFor(n, fn)  — run fn(0..n-1) across the pool and the calling
//                         thread, returning when every iteration is done.
//
// ParallelFor is cooperative: the caller participates in the loop, so a
// ParallelFor issued from inside a pool task (nested parallelism) degrades
// to caller-only execution instead of deadlocking, and a pool whose workers
// are busy never stalls the caller. Iteration *assignment* to threads is
// nondeterministic; callers must keep iterations independent (the analysis
// engine's per-part tasks touch disjoint WfaInstances).
#ifndef WFIT_COMMON_WORKER_POOL_H_
#define WFIT_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfit {

class WorkerPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreads(). A pool of one
  /// thread is legal but ParallelFor callers also run iterations, so
  /// size the pool to the total desired concurrency.
  explicit WorkerPool(size_t num_threads = 0);

  /// Joins all workers after draining submitted tasks.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// max(1, std::thread::hardware_concurrency()).
  static size_t DefaultThreads();

  /// Enqueues a task for asynchronous execution (FIFO dispatch).
  void Submit(std::function<void()> task);

  /// Runs body(0) .. body(n-1) across the pool, with the calling thread
  /// pulling iterations too. Returns when all n iterations completed. If
  /// any iteration throws, the first exception is rethrown here (after all
  /// iterations have been claimed; in-flight ones still finish).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace wfit

#endif  // WFIT_COMMON_WORKER_POOL_H_
