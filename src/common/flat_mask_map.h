// Open-addressed hash tables keyed by configuration Mask, used by the IBG
// enumeration core. The std::unordered_map node tables dominated chooseCands'
// profile (one heap node per IBG node, pointer-chasing per benefit/doi cost
// lookup); these flat tables keep every slot in one contiguous allocation,
// probe linearly, and can be pre-sized from the IBG's node-closure bound so
// the common case never rehashes.
//
// Restrictions (all satisfied by IBG masks): keys are < 0xFFFFFFFF (the
// empty-slot sentinel; IBG masks use at most 25 bits), there is no erase,
// and values are trivially movable.
#ifndef WFIT_COMMON_FLAT_MASK_MAP_H_
#define WFIT_COMMON_FLAT_MASK_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace wfit {

template <typename V>
class FlatMaskMap {
 public:
  static constexpr Mask kEmptyKey = 0xFFFFFFFFu;

  FlatMaskMap() = default;

  /// Drops all entries and pre-sizes the table for `expected` insertions
  /// without rehashing. Capacity is retained across Reset calls when
  /// sufficient, so per-statement reuse is allocation-free.
  void Reset(size_t expected) {
    size_t cap = 16;
    while (cap * 7 < (expected + 1) * 10) cap <<= 1;  // load factor <= 0.7
    if (cap > slots_.size()) {
      slots_.assign(cap, Slot{});
    } else {
      for (Slot& s : slots_) s.key = kEmptyKey;
    }
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent.
  const V* Find(Mask key) const {
    if (slots_.empty()) return nullptr;
    const size_t cap_mask = slots_.size() - 1;
    size_t i = Hash(key) & cap_mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      i = (i + 1) & cap_mask;
    }
  }
  V* Find(Mask key) {
    return const_cast<V*>(static_cast<const FlatMaskMap*>(this)->Find(key));
  }

  bool Contains(Mask key) const { return Find(key) != nullptr; }

  /// Inserts (key, value); `key` must not be present (IBG tables never
  /// overwrite — a node/cost is computed exactly once).
  void Insert(Mask key, V value) {
    WFIT_DCHECK(key != kEmptyKey, "FlatMaskMap: reserved key");
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      Grow();
    }
    const size_t cap_mask = slots_.size() - 1;
    size_t i = Hash(key) & cap_mask;
    while (slots_[i].key != kEmptyKey) {
      WFIT_DCHECK(slots_[i].key != key, "FlatMaskMap: duplicate insert");
      i = (i + 1) & cap_mask;
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Mask key = kEmptyKey;
    V value{};
  };

  static size_t Hash(Mask key) {
    // Fibonacci multiplicative mix: masks are dense low-bit patterns, so a
    // single 64-bit multiply spreads them across the table.
    uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> 32);
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != kEmptyKey) Insert(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace wfit

#endif  // WFIT_COMMON_FLAT_MASK_MAP_H_
