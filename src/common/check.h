// Internal invariant checking. WFIT_CHECK is always on (the library is a
// research artifact where silent corruption of tuning state is worse than an
// abort); WFIT_DCHECK compiles away in release builds.
#ifndef WFIT_COMMON_CHECK_H_
#define WFIT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace wfit::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "WFIT_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg.empty() ? "" : ": ", msg.c_str());
  std::abort();
}

}  // namespace wfit::internal

#define WFIT_CHECK(cond, ...)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::wfit::internal::CheckFailed(#cond, __FILE__, __LINE__,            \
                                    ::std::string(__VA_ARGS__));          \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define WFIT_DCHECK(cond, ...) WFIT_CHECK(cond, ##__VA_ARGS__)
#else
#define WFIT_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#endif

#endif  // WFIT_COMMON_CHECK_H_
