#include "common/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace wfit {

size_t WorkerPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  WFIT_CHECK(task != nullptr, "WorkerPool::Submit requires a task");
  // Tasks inherit the submitter's observability state (trace context +
  // stage sink): a per-part IBG probe on a pool thread must attribute its
  // spans and stage time to the statement that spawned it.
  obs::ThreadState state = obs::CaptureThreadState();
  if (!state.empty()) {
    task = [state, inner = std::move(task)] {
      obs::ScopedThreadState scoped(state);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    WFIT_CHECK(!stop_, "WorkerPool::Submit after shutdown");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared loop state. Helpers hold the shared_ptr, so a task that fires
  // after the loop already finished (all iterations claimed) is a no-op
  // rather than a dangling access.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->total = n;
  shared->body = &body;

  auto drain = [shared] {
    size_t i;
    while ((i = shared->next.fetch_add(1)) < shared->total) {
      try {
        (*shared->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->m);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done.fetch_add(1) + 1 == shared->total) {
        // Notify under the mutex so the caller's predicate check cannot
        // miss the final completion.
        std::lock_guard<std::mutex> lock(shared->m);
        shared->done_cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(threads_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();  // the caller works too — nested ParallelFor cannot deadlock

  std::unique_lock<std::mutex> lock(shared->m);
  shared->done_cv.wait(lock,
                       [&] { return shared->done.load() == shared->total; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace wfit
