// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every persisted frame: snapshot headers/payloads and journal
// records (persist/). One-shot and incremental forms; the incremental form
// lets framing code checksum scattered buffers without concatenating them.
#ifndef WFIT_COMMON_CRC32_H_
#define WFIT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wfit {

/// Extends a running CRC-32 with `len` more bytes. Seed a fresh computation
/// with crc == 0; the return value feeds the next call.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// One-shot CRC-32 of a buffer. Crc32("123456789") == 0xCBF43926.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace wfit

#endif  // WFIT_COMMON_CRC32_H_
