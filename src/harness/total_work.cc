#include "harness/total_work.h"

namespace wfit {

double TotalWorkMeter::Step(const Statement& q, const IndexSet& config) {
  const CostModel& model = optimizer_->cost_model();
  double transition = model.TransitionCost(current_, config);
  double query_cost = optimizer_->Cost(q, config);
  current_ = config;
  transition_total_ += transition;
  total_ += transition + query_cost;
  cumulative_.push_back(total_);
  return transition + query_cost;
}

}  // namespace wfit
