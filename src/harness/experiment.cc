#include "harness/experiment.h"

#include <chrono>

namespace wfit::harness {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ExperimentSeries ExperimentDriver::Run(
    Tuner* tuner, const IndexSet& initial,
    const std::vector<FeedbackEvent>& feedback,
    const ExperimentOptions& options) const {
  WFIT_CHECK(tuner != nullptr, "Run requires a tuner");
  WFIT_CHECK(options.lag >= 1, "lag must be at least 1");
  ExperimentSeries series;
  series.name = tuner->name();
  const WhatIfCacheCounters cache_before = tuner->WhatIfCache();

  TotalWorkMeter meter(optimizer_, initial);
  IndexSet materialized = initial;

  size_t feedback_pos = 0;
  auto apply_feedback_through = [&](int64_t position) {
    while (feedback_pos < feedback.size() &&
           feedback[feedback_pos].after_statement <= position) {
      tuner->Feedback(feedback[feedback_pos].f_plus,
                      feedback[feedback_pos].f_minus);
      ++feedback_pos;
    }
  };

  // Votes cast before the first statement.
  apply_feedback_through(-1);

  for (size_t n = 0; n < workload_->size(); ++n) {
    const Statement& q = (*workload_)[n];

    uint64_t calls_before = optimizer_->num_calls();
    Clock::time_point t0 = Clock::now();
    tuner->AnalyzeQuery(q);
    series.analyze_seconds += Seconds(t0, Clock::now());
    series.what_if_calls += optimizer_->num_calls() - calls_before;

    // Feedback elements arriving between qn and qn+1 contribute to Sn
    // (Sec. 3.1: "Sn ... after analyzing qn and all feedback up to qn+1").
    apply_feedback_through(static_cast<int64_t>(n));

    if (n % options.lag == 0) {
      IndexSet accepted = tuner->Recommendation();
      if (options.lag > 1) {
        // Implicit votes from the DBA's accept action: created indices get
        // positive votes, dropped ones negative votes (Sec. 3.1).
        IndexSet created = accepted.Minus(materialized);
        IndexSet dropped = materialized.Minus(accepted);
        if (!created.empty() || !dropped.empty()) {
          tuner->Feedback(created, dropped);
          accepted = tuner->Recommendation();
        }
      }
      materialized = accepted;
    }

    meter.Step(q, materialized);
    if ((n + 1) % options.checkpoint_every == 0 ||
        n + 1 == workload_->size()) {
      series.checkpoints.push_back(n + 1);
      series.total_at_checkpoint.push_back(meter.total());
    }
  }
  series.cumulative = meter.cumulative();
  series.final_total = meter.total();
  const WhatIfCacheCounters cache_after = tuner->WhatIfCache();
  series.what_if_cache_hits = cache_after.hits - cache_before.hits;
  series.what_if_cache_misses = cache_after.misses - cache_before.misses;
  series.what_if_cross_hits = cache_after.cross_hits - cache_before.cross_hits;
  return series;
}

ExperimentSeries SeriesFromPrefixOptimum(
    const std::vector<double>& prefix_optimum, const std::string& name,
    const ExperimentOptions& options) {
  ExperimentSeries series;
  series.name = name;
  series.cumulative = prefix_optimum;
  for (size_t n = 0; n < prefix_optimum.size(); ++n) {
    if ((n + 1) % options.checkpoint_every == 0 ||
        n + 1 == prefix_optimum.size()) {
      series.checkpoints.push_back(n + 1);
      series.total_at_checkpoint.push_back(prefix_optimum[n]);
    }
  }
  series.final_total =
      prefix_optimum.empty() ? 0.0 : prefix_optimum.back();
  return series;
}

ExperimentSeries ExperimentDriver::Replay(
    const std::vector<IndexSet>& schedule, const IndexSet& initial,
    const std::string& name, const ExperimentOptions& options) const {
  WFIT_CHECK(schedule.size() == workload_->size(),
             "schedule length must match the workload");
  ExperimentSeries series;
  series.name = name;
  TotalWorkMeter meter(optimizer_, initial);
  for (size_t n = 0; n < workload_->size(); ++n) {
    meter.Step((*workload_)[n], schedule[n]);
    if ((n + 1) % options.checkpoint_every == 0 ||
        n + 1 == workload_->size()) {
      series.checkpoints.push_back(n + 1);
      series.total_at_checkpoint.push_back(meter.total());
    }
  }
  series.cumulative = meter.cumulative();
  series.final_total = meter.total();
  return series;
}

}  // namespace wfit::harness
