// Offline computation of the fixed stable partition used by the evaluation
// (Sec. 6.1, "Generating the Fixed Stable Partition"): mine candidates from
// the whole workload, score them by workload-average benefit and degree of
// interaction (instead of chooseCands' recency windows), keep the top
// idxCnt, and partition under stateCnt. This gives every compared algorithm
// the same configuration space.
#ifndef WFIT_HARNESS_OFFLINE_TUNING_H_
#define WFIT_HARNESS_OFFLINE_TUNING_H_

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "optimizer/index_extractor.h"
#include "optimizer/what_if.h"
#include "workload/statement.h"

namespace wfit::harness {

struct OfflineTuningOptions {
  size_t idx_cnt = 40;
  size_t state_cnt = 500;
  int rand_cnt = 10;
  uint64_t seed = 7;
  ExtractorOptions extractor;
  /// Per-query IBG cap (see core/candidates.h).
  size_t ibg_cap = 25;
  /// Per-query what-if node budget (see core/candidates.h).
  size_t ibg_node_budget = 300;
};

struct OfflinePartitionResult {
  /// The fixed candidate set C (top idx_cnt by average benefit).
  IndexSet candidates;
  /// Stable partition {C1, ..., CK} of C under state_cnt.
  std::vector<IndexSet> partition;
  /// Singleton partition of C (the WFIT-IND configuration).
  std::vector<IndexSet> singleton_partition;
  /// Total candidates mined from the workload (paper: ~300).
  size_t universe_size = 0;
};

/// Workload-aggregate statistics: the expensive measurement pass, shared
/// across partitions with different idx_cnt/state_cnt (the Fig. 8 bench
/// derives three partitions from one pass).
struct OfflineStats {
  IndexSet universe;
  std::unordered_map<IndexId, double> total_benefit;
  std::map<std::pair<IndexId, IndexId>, double> total_doi;
};

/// Mines candidates and measures per-index benefit / pairwise doi over the
/// whole workload.
OfflineStats ComputeOfflineStats(const Workload& workload, IndexPool* pool,
                                 const WhatIfOptimizer* optimizer,
                                 const OfflineTuningOptions& options);

/// Derives the fixed candidate set and stable partition from measured
/// statistics. Deterministic in `options.seed`.
OfflinePartitionResult PartitionFromStats(const OfflineStats& stats,
                                          const OfflineTuningOptions& options);

/// Convenience: ComputeOfflineStats + PartitionFromStats.
OfflinePartitionResult ComputeFixedPartition(const Workload& workload,
                                             IndexPool* pool,
                                             const WhatIfOptimizer* optimizer,
                                             const OfflineTuningOptions& options);

}  // namespace wfit::harness

#endif  // WFIT_HARNESS_OFFLINE_TUNING_H_
