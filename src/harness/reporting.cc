#include "harness/reporting.h"

#include <iomanip>

namespace wfit::harness {

namespace {

double RatioAt(const ExperimentSeries& opt, const ExperimentSeries& s,
               size_t row) {
  double denom = s.total_at_checkpoint[row];
  if (denom <= 0.0) return 1.0;
  return opt.total_at_checkpoint[row] / denom;
}

}  // namespace

void PrintRatioTable(std::ostream& os, const ExperimentSeries& opt,
                     const std::vector<ExperimentSeries>& series,
                     const std::string& title) {
  os << "== " << title << " ==\n";
  os << "Total Work Ratio (OPT=1)\n";
  os << std::setw(8) << "query#";
  for (const ExperimentSeries& s : series) {
    os << std::setw(14) << s.name;
  }
  os << "\n";
  for (size_t row = 0; row < opt.checkpoints.size(); ++row) {
    os << std::setw(8) << opt.checkpoints[row];
    for (const ExperimentSeries& s : series) {
      WFIT_CHECK(s.checkpoints.size() == opt.checkpoints.size(),
                 "checkpoint mismatch between series");
      os << std::setw(14) << std::fixed << std::setprecision(4)
         << RatioAt(opt, s, row);
    }
    os << "\n";
  }
  os.flush();
}

void WriteRatioCsv(std::ostream& os, const ExperimentSeries& opt,
                   const std::vector<ExperimentSeries>& series) {
  os << "query";
  for (const ExperimentSeries& s : series) os << "," << s.name;
  os << "\n";
  for (size_t row = 0; row < opt.checkpoints.size(); ++row) {
    os << opt.checkpoints[row];
    for (const ExperimentSeries& s : series) {
      os << "," << RatioAt(opt, s, row);
    }
    os << "\n";
  }
  os.flush();
}

void PrintOverheadTable(std::ostream& os,
                        const std::vector<ExperimentSeries>& series,
                        size_t num_statements) {
  os << std::setw(14) << "tuner" << std::setw(18) << "ms/statement"
     << std::setw(18) << "what-if/stmt" << "\n";
  for (const ExperimentSeries& s : series) {
    double ms = num_statements == 0
                    ? 0.0
                    : 1000.0 * s.analyze_seconds /
                          static_cast<double>(num_statements);
    double calls = num_statements == 0
                       ? 0.0
                       : static_cast<double>(s.what_if_calls) /
                             static_cast<double>(num_statements);
    os << std::setw(14) << s.name << std::setw(18) << std::fixed
       << std::setprecision(3) << ms << std::setw(18) << std::setprecision(1)
       << calls << "\n";
  }
  os.flush();
}

void PrintServiceMetrics(std::ostream& os, const std::string& title,
                         const service::MetricsSnapshot& m) {
  os << "== " << title << " ==\n";
  os << std::setw(26) << "statements submitted" << std::setw(14)
     << m.statements_submitted << "\n";
  os << std::setw(26) << "statements analyzed" << std::setw(14)
     << m.statements_analyzed << "\n";
  os << std::setw(26) << "batches" << std::setw(14) << m.batches
     << "   (mean " << std::fixed << std::setprecision(2) << m.mean_batch()
     << ", max " << m.max_batch << ")\n";
  os << std::setw(26) << "queue depth / capacity" << std::setw(14)
     << m.queue_depth << "   (high water " << m.queue_high_water << " of "
     << m.queue_capacity << ")\n";
  os << std::setw(26) << "backpressure waits" << std::setw(14)
     << m.push_waits << "   (rejections " << m.submit_rejected << ")\n";
  os << std::setw(26) << "feedback applied" << std::setw(14)
     << m.feedback_applied << "\n";
  os << std::setw(26) << "repartitions" << std::setw(14) << m.repartitions
     << "\n";
  os << std::setw(26) << "snapshot version" << std::setw(14)
     << m.snapshot_version << "\n";
  os << std::setw(26) << "analysis latency mean" << std::setw(14)
     << std::setprecision(1) << m.mean_latency_us() << " us   (p50<="
     << m.LatencyQuantileUpperUs(0.5) << ", p99<="
     << m.LatencyQuantileUpperUs(0.99) << ")\n";
  os.flush();
}

}  // namespace wfit::harness
