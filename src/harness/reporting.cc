#include "harness/reporting.h"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

namespace wfit::harness {

namespace {

double RatioAt(const ExperimentSeries& opt, const ExperimentSeries& s,
               size_t row) {
  double denom = s.total_at_checkpoint[row];
  if (denom <= 0.0) return 1.0;
  return opt.total_at_checkpoint[row] / denom;
}

}  // namespace

void PrintRatioTable(std::ostream& os, const ExperimentSeries& opt,
                     const std::vector<ExperimentSeries>& series,
                     const std::string& title) {
  os << "== " << title << " ==\n";
  os << "Total Work Ratio (OPT=1)\n";
  os << std::setw(8) << "query#";
  for (const ExperimentSeries& s : series) {
    os << std::setw(14) << s.name;
  }
  os << "\n";
  for (size_t row = 0; row < opt.checkpoints.size(); ++row) {
    os << std::setw(8) << opt.checkpoints[row];
    for (const ExperimentSeries& s : series) {
      WFIT_CHECK(s.checkpoints.size() == opt.checkpoints.size(),
                 "checkpoint mismatch between series");
      os << std::setw(14) << std::fixed << std::setprecision(4)
         << RatioAt(opt, s, row);
    }
    os << "\n";
  }
  os.flush();
}

void WriteRatioCsv(std::ostream& os, const ExperimentSeries& opt,
                   const std::vector<ExperimentSeries>& series) {
  os << "query";
  for (const ExperimentSeries& s : series) os << "," << s.name;
  os << "\n";
  for (size_t row = 0; row < opt.checkpoints.size(); ++row) {
    os << opt.checkpoints[row];
    for (const ExperimentSeries& s : series) {
      os << "," << RatioAt(opt, s, row);
    }
    os << "\n";
  }
  os.flush();
}

void PrintOverheadTable(std::ostream& os,
                        const std::vector<ExperimentSeries>& series,
                        size_t num_statements) {
  os << std::setw(14) << "tuner" << std::setw(18) << "ms/statement"
     << std::setw(18) << "what-if/stmt" << std::setw(18) << "cache hit%"
     << "\n";
  for (const ExperimentSeries& s : series) {
    double ms = num_statements == 0
                    ? 0.0
                    : 1000.0 * s.analyze_seconds /
                          static_cast<double>(num_statements);
    double calls = num_statements == 0
                       ? 0.0
                       : static_cast<double>(s.what_if_calls) /
                             static_cast<double>(num_statements);
    uint64_t memo_hits = s.what_if_cache_hits + s.what_if_cross_hits;
    uint64_t probes = memo_hits + s.what_if_cache_misses;
    double hit_pct = probes == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(memo_hits) /
                               static_cast<double>(probes);
    os << std::setw(14) << s.name << std::setw(18) << std::fixed
       << std::setprecision(3) << ms << std::setw(18) << std::setprecision(1)
       << calls << std::setw(18) << std::setprecision(1) << hit_pct << "\n";
  }
  os.flush();
}

void PrintServiceMetrics(std::ostream& os, const std::string& title,
                         const service::MetricsSnapshot& m) {
  os << "== " << title << " ==\n";
  os << std::setw(26) << "statements submitted" << std::setw(14)
     << m.statements_submitted << "\n";
  os << std::setw(26) << "statements analyzed" << std::setw(14)
     << m.statements_analyzed << "\n";
  os << std::setw(26) << "batches" << std::setw(14) << m.batches
     << "   (mean " << std::fixed << std::setprecision(2) << m.mean_batch()
     << ", max " << m.max_batch << ")\n";
  os << std::setw(26) << "queue depth / capacity" << std::setw(14)
     << m.queue_depth << "   (high water " << m.queue_high_water << " of "
     << m.queue_capacity << ")\n";
  os << std::setw(26) << "backpressure waits" << std::setw(14)
     << m.push_waits << "   (rejections " << m.submit_rejected << ")\n";
  os << std::setw(26) << "feedback applied" << std::setw(14)
     << m.feedback_applied << "\n";
  os << std::setw(26) << "repartitions" << std::setw(14) << m.repartitions
     << "\n";
  os << std::setw(26) << "analysis threads" << std::setw(14)
     << m.analysis_threads << "\n";
  os << std::setw(26) << "what-if cache" << std::setw(14)
     << m.what_if_cache_hits << "   (stmt hits; cross "
     << m.what_if_cross_hits << ", misses " << m.what_if_cache_misses
     << ", hit rate " << std::setprecision(3)
     << m.what_if_cache_hit_rate() << ")\n";
  os << std::setw(26) << "snapshot version" << std::setw(14)
     << m.snapshot_version << "\n";
  os << std::setw(26) << "analysis latency mean" << std::setw(14)
     << std::setprecision(1) << m.mean_latency_us() << " us   (p50<="
     << m.LatencyQuantileUpperUs(0.5) << ", p99<="
     << m.LatencyQuantileUpperUs(0.99) << ")\n";
  for (int s = 0; s < obs::kStageCount; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    if (m.stage_count(stage) == 0) continue;
    os << std::setw(26)
       << (std::string("stage ") + obs::StageName(stage)) << std::setw(14)
       << m.stage_count(stage) << "   (mean " << std::setprecision(1)
       << m.stage_mean_us(stage) << " us)\n";
  }
  if (m.journal_records > 0 || m.checkpoints_written > 0) {
    os << std::setw(26) << "journal records" << std::setw(14)
       << m.journal_records << "   (" << m.journal_bytes << " bytes, "
       << m.journal_syncs << " fsync batches)\n";
    os << std::setw(26) << "checkpoints written" << std::setw(14)
       << m.checkpoints_written << "   (last @" << m.last_checkpoint_seq
       << ", " << m.last_snapshot_bytes << " bytes, failures "
       << m.checkpoint_failures << ")\n";
    os << std::setw(26) << "recovery replayed" << std::setw(14)
       << m.recovery_replayed_statements << "   (+"
       << m.recovery_replayed_feedback << " votes, snapshot loaded "
       << m.recovery_snapshot_loaded << ", skipped "
       << m.recovery_snapshots_skipped << ")\n";
  }
  os.flush();
}

void PrintRouterMetrics(std::ostream& os, const std::string& title,
                        const service::RouterMetricsSnapshot& m) {
  PrintServiceMetrics(os, title + " (aggregate)", m.aggregate);
  os << std::setw(26) << "tenants known/resident" << std::setw(14)
     << m.tenants_known << "   (resident " << m.tenants_resident
     << ", admissions " << m.admissions << ", evictions " << m.evictions
     << ")\n";
  os << std::setw(26) << "resident footprint" << std::setw(14)
     << m.resident_footprint_bytes << " bytes (estimated)\n";
  os << std::setw(14) << "tenant" << std::setw(12) << "analyzed"
     << std::setw(10) << "queue" << std::setw(10) << "evicted"
     << std::setw(14) << "mean lat us" << "\n";
  for (const service::TenantMetricsEntry& t : m.tenants) {
    os << std::setw(14) << t.id << std::setw(12)
       << t.service.statements_analyzed << std::setw(10)
       << t.service.queue_depth << std::setw(10) << t.evictions
       << std::setw(14) << std::fixed << std::setprecision(1)
       << t.service.mean_latency_us() << (t.resident ? "" : "   (evicted)")
       << "\n";
  }
  os.flush();
}

namespace {

/// Parses a flat one-level JSON object of numeric members, as written by
/// UpdateBenchJson. Anything unparseable is skipped (the merge then simply
/// rewrites the file from `fields`).
std::map<std::string, double> ReadFlatJson(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  size_t pos = 0;
  while (true) {
    size_t key_start = text.find('"', pos);
    if (key_start == std::string::npos) break;
    size_t key_end = text.find('"', key_start + 1);
    if (key_end == std::string::npos) break;
    std::string key = text.substr(key_start + 1, key_end - key_start - 1);
    size_t colon = text.find(':', key_end);
    if (colon == std::string::npos) break;
    size_t value_start = colon + 1;
    while (value_start < text.size() &&
           std::isspace(static_cast<unsigned char>(text[value_start]))) {
      ++value_start;
    }
    if (value_start < text.size() && text[value_start] == '"') {
      // String member: skip the whole value so its contents are not
      // mistaken for the next key.
      size_t close = text.find('"', value_start + 1);
      if (close == std::string::npos) break;
      pos = close + 1;
      continue;
    }
    size_t value_end = value_start;
    while (value_end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[value_end])) ||
            text[value_end] == '-' || text[value_end] == '+' ||
            text[value_end] == '.' || text[value_end] == 'e' ||
            text[value_end] == 'E')) {
      ++value_end;
    }
    if (value_end > value_start) {
      try {
        out[key] = std::stod(text.substr(value_start, value_end - value_start));
      } catch (...) {
        // Not a number (e.g. a string member): skip it.
      }
    }
    pos = value_end > key_end ? value_end : key_end + 1;
  }
  return out;
}

}  // namespace

void UpdateBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::map<std::string, double> merged = ReadFlatJson(path);
  for (const auto& [key, value] : fields) merged[key] = value;
  std::ofstream out(path, std::ios::trunc);
  WFIT_CHECK(out.good(), "UpdateBenchJson: cannot open " + path);
  out << "{\n";
  size_t i = 0;
  for (const auto& [key, value] : merged) {
    out << "  \"" << key << "\": " << std::setprecision(12) << value;
    if (++i < merged.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
}

}  // namespace wfit::harness
