// Console / CSV rendering of experiment series: the "Total Work Ratio
// (OPT=1)" curves the paper plots in Figs. 8-12.
#ifndef WFIT_HARNESS_REPORTING_H_
#define WFIT_HARNESS_REPORTING_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "service/metrics.h"
#include "service/tenant_router.h"

namespace wfit::harness {

/// Prints one row per checkpoint: statement count, then
/// totWork(OPT)/totWork(A) for every series (1.0 means optimal; > 1.0
/// means the series beats the restricted OPT, cf. Fig. 12).
void PrintRatioTable(std::ostream& os, const ExperimentSeries& opt,
                     const std::vector<ExperimentSeries>& series,
                     const std::string& title);

/// Same table as CSV (header row + one line per checkpoint).
void WriteRatioCsv(std::ostream& os, const ExperimentSeries& opt,
                   const std::vector<ExperimentSeries>& series);

/// Prints per-tuner overhead: analysis ms/statement and what-if calls per
/// statement (the paper's Sec. 6.2 "Overhead" study).
void PrintOverheadTable(std::ostream& os,
                        const std::vector<ExperimentSeries>& series,
                        size_t num_statements);

/// Human-readable summary of an online tuning service run: ingest volume,
/// queue pressure, batch shape, latency distribution and feedback counts.
/// (Machine-readable export is service::ExportText.)
void PrintServiceMetrics(std::ostream& os, const std::string& title,
                         const service::MetricsSnapshot& m);

/// Human-readable summary of a multi-tenant router run: the aggregate
/// rollup plus a per-tenant table (statements, queue, evictions, latency).
/// (Machine-readable export is service::ExportRouterText.)
void PrintRouterMetrics(std::ostream& os, const std::string& title,
                        const service::RouterMetricsSnapshot& m);

/// Merges flat numeric metrics into a JSON file of one object with
/// "key": value members (the benches' machine-readable perf trajectory,
/// e.g. BENCH_service.json). Existing keys not in `fields` are preserved;
/// keys in `fields` are overwritten; the result is written sorted by key.
/// Only files previously produced by this function (or any flat one-level
/// object of numeric members) are understood.
void UpdateBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& fields);

}  // namespace wfit::harness

#endif  // WFIT_HARNESS_REPORTING_H_
