// DBA feedback synthesis (Sec. 6.2, "The Effect of Feedback"): the
// prescient DBA votes exactly where OPT changes its configuration — a
// positive vote when OPT creates an index after query n and a negative vote
// when it drops one (VGOOD); VBAD is the mirror image with the vote signs
// swapped.
#ifndef WFIT_HARNESS_FEEDBACK_GEN_H_
#define WFIT_HARNESS_FEEDBACK_GEN_H_

#include <cstdint>
#include <vector>

#include "baselines/opt.h"
#include "core/index_set.h"

namespace wfit {

/// One feedback element of the stream V. Applied after the tuner analyzes
/// statement `after_statement` (0-based); -1 means before any statement.
struct FeedbackEvent {
  int64_t after_statement = -1;
  IndexSet f_plus;
  IndexSet f_minus;
};

/// VGOOD: votes mirroring OPT's create/drop events.
std::vector<FeedbackEvent> GoodFeedback(const OptimalSchedule& opt,
                                        const IndexSet& initial);

/// VBAD: VGOOD with positive and negative votes swapped.
std::vector<FeedbackEvent> BadFeedback(const OptimalSchedule& opt,
                                       const IndexSet& initial);

}  // namespace wfit

#endif  // WFIT_HARNESS_FEEDBACK_GEN_H_
