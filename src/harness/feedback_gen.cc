#include "harness/feedback_gen.h"

namespace wfit {

namespace {

std::vector<FeedbackEvent> FromSchedule(const OptimalSchedule& opt,
                                        const IndexSet& initial,
                                        bool mirrored) {
  std::vector<FeedbackEvent> events;
  const IndexSet* prev = &initial;
  for (size_t n = 0; n < opt.configs.size(); ++n) {
    IndexSet created = opt.configs[n].Minus(*prev);
    IndexSet dropped = prev->Minus(opt.configs[n]);
    if (!created.empty() || !dropped.empty()) {
      FeedbackEvent event;
      // The transition into configs[n] happens after OPT has seen statement
      // n-1 and before statement n.
      event.after_statement = static_cast<int64_t>(n) - 1;
      event.f_plus = mirrored ? dropped : created;
      event.f_minus = mirrored ? created : dropped;
      events.push_back(std::move(event));
    }
    prev = &opt.configs[n];
  }
  return events;
}

}  // namespace

std::vector<FeedbackEvent> GoodFeedback(const OptimalSchedule& opt,
                                        const IndexSet& initial) {
  return FromSchedule(opt, initial, /*mirrored=*/false);
}

std::vector<FeedbackEvent> BadFeedback(const OptimalSchedule& opt,
                                       const IndexSet& initial) {
  return FromSchedule(opt, initial, /*mirrored=*/true);
}

}  // namespace wfit
