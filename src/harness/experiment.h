// Experiment driver: runs a Tuner over a workload under the paper's
// protocol and measures totWork, per-statement analysis overhead and
// what-if call counts. Supports the evaluation's three input models:
// immediate adoption (Figs. 8-10), feedback streams V (Figs. 9-10), and
// lagged acceptance V_T with implicit votes (Fig. 11).
#ifndef WFIT_HARNESS_EXPERIMENT_H_
#define WFIT_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/tuner.h"
#include "harness/feedback_gen.h"
#include "harness/total_work.h"

namespace wfit::harness {

struct ExperimentOptions {
  /// Record the cumulative totals every this many statements.
  size_t checkpoint_every = 100;
  /// The DBA accepts the current recommendation every `lag` statements
  /// (paper's V_T). lag == 1 grants full autonomy; lag > 1 additionally
  /// casts the implicit votes derived from the accepted changes.
  size_t lag = 1;
};

struct ExperimentSeries {
  std::string name;
  /// Cumulative totWork after each statement.
  std::vector<double> cumulative;
  /// Checkpoint statement counts (1-based) and totals at those points.
  std::vector<size_t> checkpoints;
  std::vector<double> total_at_checkpoint;
  double final_total = 0.0;
  /// Tuner-only analysis time (seconds) and what-if calls (real optimizer
  /// invocations; memoized probes do not count).
  double analyze_seconds = 0.0;
  uint64_t what_if_calls = 0;
  /// What-if memo counters (zero for tuners without one): statement-scoped
  /// tier, cross-statement template tier, and real optimizer calls.
  uint64_t what_if_cache_hits = 0;
  uint64_t what_if_cache_misses = 0;
  uint64_t what_if_cross_hits = 0;
};

class ExperimentDriver {
 public:
  ExperimentDriver(const Workload* workload, const WhatIfOptimizer* optimizer)
      : workload_(workload), optimizer_(optimizer) {
    WFIT_CHECK(workload != nullptr && optimizer != nullptr,
               "ExperimentDriver requires workload and optimizer");
  }

  /// Runs `tuner` with the feedback stream `feedback` (may be empty).
  ExperimentSeries Run(Tuner* tuner, const IndexSet& initial,
                       const std::vector<FeedbackEvent>& feedback,
                       const ExperimentOptions& options = {}) const;

  /// Meters a precomputed schedule (OPT) under identical accounting.
  ExperimentSeries Replay(const std::vector<IndexSet>& schedule,
                          const IndexSet& initial, const std::string& name,
                          const ExperimentOptions& options = {}) const;

 private:
  const Workload* workload_;
  const WhatIfOptimizer* optimizer_;
};

/// Wraps OPT's per-prefix optima (baselines/opt.h) into a series with the
/// same checkpoint structure as ExperimentDriver runs — the paper's "OPT=1"
/// reference curve.
ExperimentSeries SeriesFromPrefixOptimum(
    const std::vector<double>& prefix_optimum, const std::string& name,
    const ExperimentOptions& options = {});

}  // namespace wfit::harness

#endif  // WFIT_HARNESS_EXPERIMENT_H_
