#include "harness/offline_tuning.h"

#include <algorithm>
#include <limits>

#include "core/wfa_plus.h"
#include "ibg/ibg.h"
#include "ibg/interactions.h"

namespace wfit::harness {

OfflineStats ComputeOfflineStats(const Workload& workload, IndexPool* pool,
                                 const WhatIfOptimizer* optimizer,
                                 const OfflineTuningOptions& options) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "ComputeOfflineStats requires pool and optimizer");
  OfflineStats stats;

  // Pass 1: mine the universe U (extractIndices over every statement).
  std::vector<std::vector<IndexId>> extracted(workload.size());
  for (size_t n = 0; n < workload.size(); ++n) {
    extracted[n] = ExtractIndices(workload[n], pool, options.extractor);
    for (IndexId id : extracted[n]) stats.universe.Add(id);
  }

  // Pass 2: average benefit and doi over the whole workload, measured on
  // each statement's own candidate slice via its IBG. Ranked by the
  // benefit accumulated so far, so budget-based shedding drops the tail.
  std::vector<IndexId> slice(stats.universe.begin(), stats.universe.end());
  for (size_t n = 0; n < workload.size(); ++n) {
    std::vector<IndexId> relevant = RelevantCandidates(
        workload[n], *pool, slice, std::numeric_limits<size_t>::max());
    std::stable_sort(relevant.begin(), relevant.end(),
                     [&stats](IndexId a, IndexId b) {
                       auto va = stats.total_benefit.find(a);
                       auto vb = stats.total_benefit.find(b);
                       double ba =
                           va == stats.total_benefit.end() ? 0.0 : va->second;
                       double bb =
                           vb == stats.total_benefit.end() ? 0.0 : vb->second;
                       if (ba != bb) return ba > bb;
                       return a < b;
                     });
    if (relevant.size() > options.ibg_cap) relevant.resize(options.ibg_cap);
    if (relevant.empty()) continue;
    IndexBenefitGraph ibg(workload[n], *optimizer, relevant,
                          options.ibg_node_budget);
    for (size_t bit = 0; bit < ibg.candidates().size(); ++bit) {
      double beta = ibg.MaxBenefit(static_cast<int>(bit));
      if (beta > 0.0) stats.total_benefit[ibg.candidates()[bit]] += beta;
    }
    for (const InteractionEntry& e : ComputeInteractions(ibg)) {
      auto key = std::minmax(e.a, e.b);
      stats.total_doi[{key.first, key.second}] += e.doi;
    }
  }
  return stats;
}

OfflinePartitionResult PartitionFromStats(
    const OfflineStats& stats, const OfflineTuningOptions& options) {
  // Top idx_cnt by average (== total/N) benefit.
  std::vector<std::pair<IndexId, double>> scored;
  for (const auto& [id, benefit] : stats.total_benefit) {
    scored.emplace_back(id, benefit);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  OfflinePartitionResult out;
  out.universe_size = stats.universe.size();
  for (const auto& [id, benefit] : scored) {
    if (out.candidates.size() >= options.idx_cnt) break;
    if (benefit <= 0.0) break;
    out.candidates.Add(id);
  }

  // Partition under state_cnt using workload-average doi.
  DoiFn doi = [&stats](IndexId a, IndexId b) {
    auto key = std::minmax(a, b);
    auto it = stats.total_doi.find({key.first, key.second});
    return it == stats.total_doi.end() ? 0.0 : it->second;
  };
  PartitionOptions popts;
  popts.state_cnt = options.state_cnt;
  popts.rand_cnt = options.rand_cnt;
  Rng rng(options.seed);
  out.partition = ChoosePartition(
      std::vector<IndexId>(out.candidates.begin(), out.candidates.end()), {},
      doi, popts, &rng);
  for (IndexId id : out.candidates) {
    out.singleton_partition.push_back(IndexSet{id});
  }
  return out;
}

OfflinePartitionResult ComputeFixedPartition(
    const Workload& workload, IndexPool* pool,
    const WhatIfOptimizer* optimizer, const OfflineTuningOptions& options) {
  OfflineStats stats =
      ComputeOfflineStats(workload, pool, optimizer, options);
  return PartitionFromStats(stats, options);
}

}  // namespace wfit::harness
