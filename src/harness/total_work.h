// totWork accounting (Sec. 3.1): for each statement the system pays the
// transition to the adopted configuration plus the statement's cost under
// it:  totWork = Σn cost(qn, Sn) + δ(Sn−1, Sn).
#ifndef WFIT_HARNESS_TOTAL_WORK_H_
#define WFIT_HARNESS_TOTAL_WORK_H_

#include <vector>

#include "optimizer/what_if.h"

namespace wfit {

class TotalWorkMeter {
 public:
  TotalWorkMeter(const WhatIfOptimizer* optimizer, IndexSet initial)
      : optimizer_(optimizer), current_(std::move(initial)) {
    WFIT_CHECK(optimizer != nullptr, "TotalWorkMeter requires an optimizer");
  }

  /// Adopts `config` for `q`: accumulates δ(prev, config) + cost(q, config).
  /// Returns this step's contribution.
  double Step(const Statement& q, const IndexSet& config);

  double total() const { return total_; }
  const IndexSet& current_config() const { return current_; }
  /// Cumulative total work after each step.
  const std::vector<double>& cumulative() const { return cumulative_; }
  /// Transition cost paid so far (diagnostics).
  double transition_total() const { return transition_total_; }

 private:
  const WhatIfOptimizer* optimizer_;
  IndexSet current_;
  double total_ = 0.0;
  double transition_total_ = 0.0;
  std::vector<double> cumulative_;
};

}  // namespace wfit

#endif  // WFIT_HARNESS_TOTAL_WORK_H_
