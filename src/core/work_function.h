// WFA — the Work Function Algorithm for index tuning (Fig. 3 of the paper),
// instantiated over one part Ck of the stable partition. The instance
// maintains the work function w_n(S) for every S ⊆ Ck and the current
// recommendation, updated per statement via recurrence (4.1):
//
//   w_n(S) = min_X { w_{n-1}(X) + cost(q_n, X) + δ(X, S) }
//
// Because δ decomposes per index (δ+ to create, δ− to drop), the min-plus
// step is computed by one relaxation pass per index — O(k·2^k) instead of
// the naive O(4^k); tests cross-check the two. Recommendation selection
// implements the paper's score function with the self-path (S ∈ p[S])
// constraint and the lexicographic tie-break of Appendix B.
#ifndef WFIT_CORE_WORK_FUNCTION_H_
#define WFIT_CORE_WORK_FUNCTION_H_

#include <functional>
#include <vector>

#include "common/bits.h"
#include "core/index_set.h"
#include "optimizer/cost_model.h"

namespace wfit {

/// cost(q, S) for a subset S of the part, as a function of the part-local
/// mask. Backed by an IBG in production; by tables in tests.
using PartCostFn = std::function<double(Mask)>;

class WfaInstance {
 public:
  /// Fresh instance: w_0(S) = δ(S0 ∩ Ck, S) and currRec = S0 ∩ Ck.
  /// `members` lists the part's indices; bit i of every Mask refers to
  /// members[i]. At most 20 members (2^20 work function entries).
  WfaInstance(std::vector<IndexId> members, const CostModel& cost_model,
              Mask initial_config);

  /// Restored instance (used by WFIT's repartition): explicit work function
  /// values and current recommendation.
  WfaInstance(std::vector<IndexId> members, const CostModel& cost_model,
              std::vector<double> work_function, Mask current_rec);

  /// Fresh instance with injected per-member transition costs; lets tests
  /// and synthetic task systems (e.g. Example 4.1 / Fig. 2) drive WFA
  /// without a catalog-backed cost model.
  WfaInstance(std::vector<IndexId> members, std::vector<double> create_costs,
              std::vector<double> drop_costs, Mask initial_config);

  /// Restored instance with injected transition costs.
  WfaInstance(std::vector<IndexId> members, std::vector<double> create_costs,
              std::vector<double> drop_costs,
              std::vector<double> work_function, Mask current_rec);

  /// Analyzes the next statement (Fig. 3, analyzeQuery).
  void AnalyzeQuery(const PartCostFn& cost);

  /// Applies DBA votes restricted to this part (Fig. 4, feedback):
  /// forces consistency of the recommendation and bumps the work function
  /// so inequality (5.1) holds for every state.
  void ApplyFeedback(Mask f_plus, Mask f_minus);

  /// Fig. 3, recommend().
  Mask recommendation() const { return curr_rec_; }
  IndexSet RecommendationSet() const;

  const std::vector<IndexId>& members() const { return members_; }
  size_t num_states() const { return w_.size(); }

  /// w[S] (for repartition and tests).
  double work_value(Mask s) const {
    WFIT_CHECK(s < w_.size(), "work_value: mask out of range");
    return w_[s];
  }
  /// The complete work function, indexed by part-local mask (persist/
  /// snapshots; restore via the explicit-work-function constructors).
  const std::vector<double>& work_values() const { return w_; }
  /// score(S) = w[S] + δ(S, currRec) (for tests).
  double Score(Mask s) const { return w_[s] + Delta(s, curr_rec_); }

  /// δ within the part: per-member create/drop cost sums.
  double Delta(Mask from, Mask to) const;

  /// Mask of `set` members present in this part.
  Mask ToMask(const IndexSet& set) const;
  IndexSet ToSet(Mask mask) const;

 private:
  void InitCosts(const CostModel& cost_model);
  /// In-place min-plus relaxation of v with δ: one pass per member bit.
  void Relax(std::vector<double>* v) const;

  std::vector<IndexId> members_;
  std::vector<double> create_cost_;  // δ+ per member bit
  std::vector<double> drop_cost_;    // δ− per member bit
  std::vector<double> w_;            // work function, 2^|members| entries
  Mask curr_rec_ = 0;
  // Scratch buffers reused across AnalyzeQuery calls: v_scratch_ holds
  // w[S] + cost(S) (the self-path reference), relax_scratch_ its relaxed
  // copy which becomes the new work function by swap — no per-statement
  // vector allocation.
  mutable std::vector<double> v_scratch_;
  mutable std::vector<double> relax_scratch_;
};

}  // namespace wfit

#endif  // WFIT_CORE_WORK_FUNCTION_H_
