#include "core/candidates.h"

#include <algorithm>
#include <limits>

#include "core/wfa_plus.h"
#include "ibg/interactions.h"

namespace wfit {

CandidateSelector::CandidateSelector(IndexPool* pool,
                                     const WhatIfOptimizer* optimizer,
                                     const CandidateOptions& options,
                                     uint64_t seed)
    : pool_(pool),
      optimizer_(optimizer),
      options_(options),
      rng_(seed),
      idx_stats_(options.hist_size),
      int_stats_(options.hist_size) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "CandidateSelector requires pool and optimizer");
}

double CandidateSelector::UniverseBenefit(
    IndexId a, const std::vector<double>& benefit_of) const {
  // universe_ is sorted; every queried id comes from it.
  const std::vector<IndexId>& ids = universe_.ids();
  auto it = std::lower_bound(ids.begin(), ids.end(), a);
  WFIT_DCHECK(it != ids.end() && *it == a, "id outside the universe");
  return benefit_of[static_cast<size_t>(it - ids.begin())];
}

std::vector<IndexId> CandidateSelector::TopIndices(
    const std::vector<IndexId>& x, size_t u, const IndexSet& monitored,
    const std::vector<double>& benefit_of) const {
  if (u == 0 || x.empty()) return {};
  struct Scored {
    IndexId id;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(x.size());
  for (IndexId a : x) {
    double score = UniverseBenefit(a, benefit_of);
    if (!monitored.Contains(a)) {
      // A new index must displace a monitored one: charge (a scaled share
      // of) its materialization cost as required extra evidence.
      score -= options_.creation_penalty_factor *
               optimizer_->cost_model().CreateCost(a);
    }
    scored.push_back(Scored{a, score});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.id < b.id;
                   });
  std::vector<IndexId> out;
  for (const Scored& s : scored) {
    if (out.size() >= u) break;
    if (s.score <= 0.0) break;  // no evidence of benefit: stop adding
    out.push_back(s.id);
  }
  return out;
}

SelectorState CandidateSelector::ExportState() const {
  SelectorState state;
  state.universe = universe_;
  state.position = position_;
  state.rng_state = rng_.SaveState();
  state.benefit_windows = idx_stats_.Export();
  state.interaction_windows = int_stats_.Export();
  return state;
}

Status CandidateSelector::RestoreState(const SelectorState& state) {
  if (!rng_.LoadState(state.rng_state)) {
    return Status::InvalidArgument("selector state: bad RNG state");
  }
  universe_ = state.universe;
  position_ = state.position;
  idx_stats_ = BenefitStats(options_.hist_size);
  for (const auto& [id, entries] : state.benefit_windows) {
    idx_stats_.RestoreWindow(id, entries);
  }
  int_stats_ = InteractionStats(options_.hist_size);
  for (const auto& [key, entries] : state.interaction_windows) {
    int_stats_.RestoreWindow(key, entries);
  }
  return Status::Ok();
}

CandidateAnalysis CandidateSelector::ChooseCands(
    const Statement& q, const IndexSet& materialized,
    const std::vector<IndexSet>& current_partition) {
  ++position_;

  // Line 1: U ← U ∪ extractIndices(q).
  for (IndexId id : ExtractIndices(q, pool_, options_.extractor)) {
    universe_.Add(id);
  }

  // Current benefit per universe id, computed ONCE per statement (aligned
  // with universe_.ids()): the ranking sort below and topIndices both
  // consume it, instead of re-walking the stats windows per comparison.
  const std::vector<IndexId>& universe_ids = universe_.ids();
  benefit_scratch_.clear();
  benefit_scratch_.reserve(universe_ids.size());
  for (IndexId a : universe_ids) {
    benefit_scratch_.push_back(idx_stats_.CurrentBenefit(a, position_));
  }

  // Line 2: the statement's IBG over the query-relevant slice of U,
  // ranked by current benefit: the mask cap and the what-if node budget
  // both shed from the low-benefit tail. Probes fan out across the
  // analysis pool when one is attached (deterministic level-sync build).
  relevant_scratch_ = RelevantCandidates(
      q, *pool_, universe_ids, /*cap=*/std::numeric_limits<size_t>::max());
  std::stable_sort(relevant_scratch_.begin(), relevant_scratch_.end(),
                   [&](IndexId a, IndexId b) {
                     double ba = UniverseBenefit(a, benefit_scratch_);
                     double bb = UniverseBenefit(b, benefit_scratch_);
                     if (ba != bb) return ba > bb;
                     return a < b;
                   });
  if (relevant_scratch_.size() > options_.ibg_cap) {
    relevant_scratch_.resize(options_.ibg_cap);
  }
  auto ibg = std::make_shared<IndexBenefitGraph>(
      q, *optimizer_, relevant_scratch_, options_.ibg_node_budget,
      analysis_pool_);

  // Line 3: updateStats — benefits βn and pairwise doi from the IBG.
  // Sampling honesty: benefits are scaled by the statement weight
  // (1/sample_rate), so window averages estimate the full stream even
  // when overload control analyzes only a sample. doi is a ratio of
  // costs within one statement, not a per-statement magnitude, so it is
  // deliberately left unscaled.
  for (size_t bit = 0; bit < ibg->candidates().size(); ++bit) {
    double beta = ibg->MaxBenefit(static_cast<int>(bit)) * statement_weight_;
    idx_stats_.Record(ibg->candidates()[bit], position_, beta);
  }
  for (const InteractionEntry& entry : ComputeInteractions(*ibg)) {
    int_stats_.Record(entry.a, entry.b, position_, entry.doi);
  }

  // Lines 4-5: D ← M ∪ topIndices(U − M, idxCnt − |M|). topIndices scores
  // with the statistics INCLUDING this statement's Record calls above, so
  // the benefit scratch is refreshed here (the ranking scratch deliberately
  // predated them, exactly like the original two separate passes).
  benefit_scratch_.clear();
  for (IndexId a : universe_ids) {
    benefit_scratch_.push_back(idx_stats_.CurrentBenefit(a, position_));
  }
  IndexSet monitored;
  for (const IndexSet& part : current_partition) {
    monitored = monitored.Union(part);
  }
  not_materialized_scratch_.clear();
  for (IndexId a : universe_ids) {
    if (!materialized.Contains(a)) not_materialized_scratch_.push_back(a);
  }
  size_t budget = options_.idx_cnt > materialized.size()
                      ? options_.idx_cnt - materialized.size()
                      : 0;
  std::vector<IndexId> top = TopIndices(not_materialized_scratch_, budget,
                                        monitored, benefit_scratch_);
  IndexSet d = materialized;
  for (IndexId a : top) d.Add(a);

  // Line 6: choosePartition(D, stateCnt). The search evaluates this
  // exactly once per D pair (it builds its own dense doi matrix).
  DoiFn doi = [this](IndexId a, IndexId b) {
    return int_stats_.CurrentDoi(a, b, position_);
  };
  PartitionOptions popts;
  popts.state_cnt = options_.state_cnt;
  popts.rand_cnt = options_.rand_cnt;
  CandidateAnalysis out;
  out.partition =
      ChoosePartition(d.ids(), current_partition, doi, popts, &rng_);
  out.ibg = std::move(ibg);
  return out;
}

}  // namespace wfit
