#include "core/candidates.h"

#include <algorithm>
#include <limits>

#include "core/wfa_plus.h"
#include "ibg/interactions.h"

namespace wfit {

CandidateSelector::CandidateSelector(IndexPool* pool,
                                     const WhatIfOptimizer* optimizer,
                                     const CandidateOptions& options,
                                     uint64_t seed)
    : pool_(pool),
      optimizer_(optimizer),
      options_(options),
      rng_(seed),
      idx_stats_(options.hist_size),
      int_stats_(options.hist_size) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "CandidateSelector requires pool and optimizer");
}

std::vector<IndexId> CandidateSelector::TopIndices(
    const std::vector<IndexId>& x, size_t u, const IndexSet& monitored) const {
  if (u == 0 || x.empty()) return {};
  struct Scored {
    IndexId id;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(x.size());
  for (IndexId a : x) {
    double score = idx_stats_.CurrentBenefit(a, position_);
    if (!monitored.Contains(a)) {
      // A new index must displace a monitored one: charge (a scaled share
      // of) its materialization cost as required extra evidence.
      score -= options_.creation_penalty_factor *
               optimizer_->cost_model().CreateCost(a);
    }
    scored.push_back(Scored{a, score});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.id < b.id;
                   });
  std::vector<IndexId> out;
  for (const Scored& s : scored) {
    if (out.size() >= u) break;
    if (s.score <= 0.0) break;  // no evidence of benefit: stop adding
    out.push_back(s.id);
  }
  return out;
}

SelectorState CandidateSelector::ExportState() const {
  SelectorState state;
  state.universe = universe_;
  state.position = position_;
  state.rng_state = rng_.SaveState();
  state.benefit_windows = idx_stats_.Export();
  state.interaction_windows = int_stats_.Export();
  return state;
}

Status CandidateSelector::RestoreState(const SelectorState& state) {
  if (!rng_.LoadState(state.rng_state)) {
    return Status::InvalidArgument("selector state: bad RNG state");
  }
  universe_ = state.universe;
  position_ = state.position;
  idx_stats_ = BenefitStats(options_.hist_size);
  for (const auto& [id, entries] : state.benefit_windows) {
    idx_stats_.RestoreWindow(id, entries);
  }
  int_stats_ = InteractionStats(options_.hist_size);
  for (const auto& [key, entries] : state.interaction_windows) {
    int_stats_.RestoreWindow(key, entries);
  }
  return Status::Ok();
}

CandidateAnalysis CandidateSelector::ChooseCands(
    const Statement& q, const IndexSet& materialized,
    const std::vector<IndexSet>& current_partition) {
  ++position_;

  // Line 1: U ← U ∪ extractIndices(q).
  for (IndexId id : ExtractIndices(q, pool_, options_.extractor)) {
    universe_.Add(id);
  }

  // Line 2: the statement's IBG over the query-relevant slice of U,
  // ranked by current benefit: the mask cap and the what-if node budget
  // both shed from the low-benefit tail.
  std::vector<IndexId> relevant = RelevantCandidates(
      q, *pool_, std::vector<IndexId>(universe_.begin(), universe_.end()),
      /*cap=*/std::numeric_limits<size_t>::max());
  std::stable_sort(relevant.begin(), relevant.end(),
                   [&](IndexId a, IndexId b) {
                     double ba = idx_stats_.CurrentBenefit(a, position_);
                     double bb = idx_stats_.CurrentBenefit(b, position_);
                     if (ba != bb) return ba > bb;
                     return a < b;
                   });
  if (relevant.size() > options_.ibg_cap) {
    relevant.resize(options_.ibg_cap);
  }
  auto ibg = std::make_shared<IndexBenefitGraph>(q, *optimizer_, relevant,
                                                 options_.ibg_node_budget);

  // Line 3: updateStats — benefits βn and pairwise doi from the IBG.
  for (size_t bit = 0; bit < ibg->candidates().size(); ++bit) {
    double beta = ibg->MaxBenefit(static_cast<int>(bit));
    idx_stats_.Record(ibg->candidates()[bit], position_, beta);
  }
  for (const InteractionEntry& entry : ComputeInteractions(*ibg)) {
    int_stats_.Record(entry.a, entry.b, position_, entry.doi);
  }

  // Lines 4-5: D ← M ∪ topIndices(U − M, idxCnt − |M|).
  IndexSet monitored;
  for (const IndexSet& part : current_partition) {
    monitored = monitored.Union(part);
  }
  std::vector<IndexId> not_materialized;
  for (IndexId a : universe_) {
    if (!materialized.Contains(a)) not_materialized.push_back(a);
  }
  size_t budget = options_.idx_cnt > materialized.size()
                      ? options_.idx_cnt - materialized.size()
                      : 0;
  std::vector<IndexId> top = TopIndices(not_materialized, budget, monitored);
  IndexSet d = materialized;
  for (IndexId a : top) d.Add(a);

  // Line 6: choosePartition(D, stateCnt).
  DoiFn doi = [this](IndexId a, IndexId b) {
    return int_stats_.CurrentDoi(a, b, position_);
  };
  PartitionOptions popts;
  popts.state_cnt = options_.state_cnt;
  popts.rand_cnt = options_.rand_cnt;
  CandidateAnalysis out;
  out.partition =
      ChoosePartition(std::vector<IndexId>(d.begin(), d.end()),
                      current_partition, doi, popts, &rng_);
  out.ibg = std::move(ibg);
  return out;
}

}  // namespace wfit
