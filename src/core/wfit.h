// WFIT (Sec. 5): the end-to-end semi-automatic tuner. Extends WFA+ with
// (a) the DBA feedback mechanism of Fig. 4 — consistency override plus the
// work-function adjustment enforcing inequality (5.1) — and (b) automatic
// candidate maintenance: chooseCands (Fig. 6) decides the candidate set and
// stable partition per statement, and repartition (Fig. 5) migrates the
// work-function state whenever the partition changes.
//
// The evaluation's "WFIT with a fixed stable partition" configuration is
// WfaPlus (core/wfa_plus.h), which shares the recommendation and feedback
// logic; this class is the AUTO configuration of Fig. 12 and the production
// deployment mode.
#ifndef WFIT_CORE_WFIT_H_
#define WFIT_CORE_WFIT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/worker_pool.h"
#include "core/candidates.h"
#include "core/tuner.h"
#include "core/work_function.h"
#include "optimizer/caching_what_if.h"

namespace wfit {

struct WfitOptions {
  CandidateOptions candidates;
  std::string name = "WFIT";
  /// Seed for choosePartition's randomized search.
  uint64_t seed = 20120402;
  /// Cross-statement what-if memoization (templates repeat in generator and
  /// OLTP workloads). Purely a probe-avoidance layer: trajectories are
  /// bit-for-bit identical with it cold, warm, or disabled
  /// (max_templates = 0), and it is never persisted — recovery restarts
  /// cold.
  CrossStatementCacheOptions cross_cache;
};

/// The complete mutable state of a Wfit tuner (persist/ snapshots). The
/// partition is stored as per-instance member lists — not IndexSets — so
/// each WfaInstance's mask bit order is preserved exactly; together with
/// the constructor arguments (pool, optimizer, options) this determines
/// all future behavior bit for bit.
struct WfitState {
  std::vector<std::vector<IndexId>> instance_members;  // {D1, ..., DM}
  std::vector<std::vector<double>> work_values;        // w(m) per part
  std::vector<Mask> current_recs;                      // currRec per part
  IndexSet candidate_set;                              // C = ∪m Dm
  IndexSet initial_materialized;                       // S0
  uint64_t repartitions = 0;
  uint64_t feedback_events = 0;
  SelectorState selector;
};

class Wfit : public Tuner {
 public:
  /// Initialization per Fig. 4: C = S0 with singleton parts; candidates
  /// evolve automatically from the workload.
  Wfit(IndexPool* pool, const WhatIfOptimizer* optimizer,
       const IndexSet& initial_materialized, const WfitOptions& options);

  void AnalyzeQuery(const Statement& q) override;
  /// NOTE: memoizes the per-part union in mutable state, so despite being
  /// const it must not race with itself or any mutating call. All Tuner
  /// entry points share one serialization domain (the service's analysis
  /// worker; the harness loop) — concurrent readers need a snapshot layer
  /// (service::TunerService::Recommendation) instead.
  IndexSet Recommendation() const override;

  /// Fig. 4 feedback. Votes on indices outside the candidate set are
  /// honored by opening a singleton part for them (positive votes) and by
  /// seeding the candidate universe, so the consistency constraint
  /// (F+ ⊆ S ∧ S ∩ F− = ∅) holds for arbitrary votes.
  void Feedback(const IndexSet& f_plus, const IndexSet& f_minus) override;

  std::string name() const override { return options_.name; }

  /// Intra-statement parallelism: the selector's statement-wide IBG build
  /// plus per-part IBG construction and WFA updates fan out across `pool`
  /// (nullptr = serial). Deterministic: the recommendation trajectory is
  /// independent of the pool size.
  void SetAnalysisPool(WorkerPool* pool) override {
    analysis_pool_ = pool;
    selector_->SetAnalysisPool(pool);
  }
  WhatIfCacheCounters WhatIfCache() const override {
    return {memo_->hits(), memo_->misses(), memo_->cross_hits()};
  }
  /// Honest-sampling support: scales the benefit each analyzed statement
  /// records into the selector's recency windows (see Tuner).
  void SetStatementWeight(double weight) override {
    selector_->SetStatementWeight(weight);
  }

  const std::vector<IndexSet>& partition() const { return partition_; }
  const IndexSet& candidate_set() const { return candidate_set_; }
  const std::vector<WfaInstance>& instances() const { return instances_; }
  const IndexSet& initial_materialized() const {
    return initial_materialized_;
  }
  uint64_t RepartitionCount() const override { return repartitions_; }
  /// DBA votes applied so far (persisted alongside the work functions).
  uint64_t FeedbackCount() const { return feedback_events_; }
  size_t TotalStates() const;
  const CandidateSelector& selector() const { return *selector_; }

  /// Snapshot hooks (persist/): ExportState captures every mutable field;
  /// RestoreState replaces them on a tuner constructed with the same
  /// (pool, optimizer, options) — IndexIds in the state refer to the
  /// pool's interning order, which persist/ restores first. Validated:
  /// returns InvalidArgument (state unchanged) on inconsistent shapes.
  WfitState ExportState() const;
  Status RestoreState(const WfitState& state);

 private:
  /// Fig. 5: adopt `new_partition`, rebuilding every WfaInstance with
  /// work-function values transferred from the old partition.
  void Repartition(const std::vector<IndexSet>& new_partition);

  IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
  /// Statement-scoped what-if memo layered over optimizer_. The selector's
  /// statement-wide IBG and every per-part IBG probe through it, so
  /// identical configuration probes within one statement cost one real
  /// optimizer call.
  std::unique_ptr<CachingWhatIfOptimizer> memo_;
  WorkerPool* analysis_pool_ = nullptr;
  WfitOptions options_;
  std::unique_ptr<CandidateSelector> selector_;
  std::vector<IndexSet> partition_;      // {C1, ..., CK}
  std::vector<WfaInstance> instances_;   // WFA(k) per part
  IndexSet candidate_set_;               // C = ∪k Ck
  IndexSet initial_materialized_;        // S0 (repartition line 7)
  uint64_t repartitions_ = 0;
  uint64_t feedback_events_ = 0;
  /// Recommendation() re-unions every instance's recommendation; it is
  /// called at least twice per statement (chooseCands input, snapshot
  /// publication), so the union is cached and invalidated whenever
  /// instance state changes (analyze / feedback / repartition).
  mutable IndexSet cached_rec_;
  mutable bool rec_valid_ = false;
};

}  // namespace wfit

#endif  // WFIT_CORE_WFIT_H_
