#include "core/wfa_plus.h"

#include <algorithm>
#include <set>

namespace wfit {

std::vector<IndexId> RelevantCandidates(const Statement& q,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap) {
  std::set<TableId> tables;
  for (const StatementTable& t : q.tables) tables.insert(t.table);
  std::vector<IndexId> out;
  for (IndexId id : universe) {
    if (tables.count(pool.def(id).table) != 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  if (out.size() > cap) out.resize(cap);
  return out;
}

WfaPlus::WfaPlus(const IndexPool* pool, const WhatIfOptimizer* optimizer,
                 std::vector<IndexSet> partition,
                 const IndexSet& initial_config, std::string display_name,
                 size_t ibg_node_budget)
    : pool_(pool),
      optimizer_(optimizer),
      partition_(std::move(partition)),
      name_(std::move(display_name)),
      ibg_node_budget_(ibg_node_budget) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "WfaPlus requires pool and optimizer");
  std::set<IndexId> seen;
  for (const IndexSet& part : partition_) {
    WFIT_CHECK(!part.empty(), "empty part in stable partition");
    std::vector<IndexId> members;
    for (IndexId id : part) {
      WFIT_CHECK(seen.insert(id).second,
                 "stable partition parts must be disjoint");
      members.push_back(id);
      all_members_.push_back(id);
    }
    // Initial configuration: S0 ∩ Ck.
    Mask init = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (initial_config.Contains(members[i])) init |= Mask{1} << i;
    }
    instances_.push_back(
        WfaInstance(std::move(members), optimizer->cost_model(), init));
  }
  std::sort(all_members_.begin(), all_members_.end());
}

void WfaPlus::AnalyzeQuery(const Statement& q) {
  // One IBG per part: WFA(k) needs cost(q, X) only for X ⊆ Ck, so each
  // part's statement-relevant members get their own (small) benefit graph.
  // This keeps every candidate's signal exact — a single statement-wide
  // graph would have to shed candidates under the mask/node budgets.
  AnalyzePartitioned(q, *pool_, *optimizer_, ibg_node_budget_, &instances_);
}

void AnalyzePartitioned(const Statement& q, const IndexPool& pool,
                        const WhatIfOptimizer& optimizer,
                        size_t ibg_node_budget,
                        std::vector<WfaInstance>* instances) {
  for (WfaInstance& instance : *instances) {
    const std::vector<IndexId>& members = instance.members();
    std::vector<IndexId> relevant = RelevantCandidates(q, pool, members);
    if (relevant.empty()) {
      // The statement cannot touch this part: a constant cost function
      // leaves the work-function differentials (hence all decisions)
      // unchanged, so skip the what-if machinery entirely.
      instance.AnalyzeQuery([](Mask) { return 0.0; });
      continue;
    }
    IndexBenefitGraph ibg(q, optimizer, relevant, ibg_node_budget);
    std::vector<int> ibg_bit(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      ibg_bit[i] = ibg.BitOf(members[i]);
    }
    instance.AnalyzeQuery([&](Mask part_mask) {
      Mask m = 0;
      Mask rest = part_mask;
      while (rest != 0) {
        int bit = LowestBit(rest);
        rest &= rest - 1;
        int ib = ibg_bit[static_cast<size_t>(bit)];
        if (ib >= 0) m |= Mask{1} << ib;
      }
      return ibg.CostOf(m);
    });
  }
}

IndexSet WfaPlus::Recommendation() const {
  IndexSet out;
  for (const WfaInstance& instance : instances_) {
    out = out.Union(instance.RecommendationSet());
  }
  return out;
}

void WfaPlus::Feedback(const IndexSet& f_plus, const IndexSet& f_minus) {
  for (WfaInstance& instance : instances_) {
    instance.ApplyFeedback(instance.ToMask(f_plus),
                           instance.ToMask(f_minus));
  }
}

size_t WfaPlus::TotalStates() const {
  size_t total = 0;
  for (const WfaInstance& instance : instances_) {
    total += instance.num_states();
  }
  return total;
}

}  // namespace wfit
