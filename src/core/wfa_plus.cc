#include "core/wfa_plus.h"

#include <algorithm>
#include <set>

namespace wfit {

std::vector<TableId> StatementTables(const Statement& q) {
  std::vector<TableId> tables;
  tables.reserve(q.tables.size());
  for (const StatementTable& t : q.tables) tables.push_back(t.table);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

std::vector<IndexId> RelevantCandidates(const std::vector<TableId>& tables,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap) {
  std::vector<IndexId> out;
  for (IndexId id : universe) {
    if (std::binary_search(tables.begin(), tables.end(), pool.def(id).table)) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  if (out.size() > cap) out.resize(cap);
  return out;
}

std::vector<IndexId> RelevantCandidates(const Statement& q,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap) {
  return RelevantCandidates(StatementTables(q), pool, universe, cap);
}

WfaPlus::WfaPlus(const IndexPool* pool, const WhatIfOptimizer* optimizer,
                 std::vector<IndexSet> partition,
                 const IndexSet& initial_config, std::string display_name,
                 size_t ibg_node_budget,
                 const CrossStatementCacheOptions& cross_cache)
    : pool_(pool),
      optimizer_(optimizer),
      partition_(std::move(partition)),
      name_(std::move(display_name)),
      ibg_node_budget_(ibg_node_budget) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "WfaPlus requires pool and optimizer");
  memo_ = std::make_unique<CachingWhatIfOptimizer>(optimizer, cross_cache);
  std::set<IndexId> seen;
  for (const IndexSet& part : partition_) {
    WFIT_CHECK(!part.empty(), "empty part in stable partition");
    std::vector<IndexId> members;
    for (IndexId id : part) {
      WFIT_CHECK(seen.insert(id).second,
                 "stable partition parts must be disjoint");
      members.push_back(id);
      all_members_.push_back(id);
    }
    // Initial configuration: S0 ∩ Ck.
    Mask init = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (initial_config.Contains(members[i])) init |= Mask{1} << i;
    }
    instances_.push_back(
        WfaInstance(std::move(members), optimizer->cost_model(), init));
  }
  std::sort(all_members_.begin(), all_members_.end());
}

void WfaPlus::AnalyzeQuery(const Statement& q) {
  // One IBG per part: WFA(k) needs cost(q, X) only for X ⊆ Ck, so each
  // part's statement-relevant members get their own (small) benefit graph.
  // This keeps every candidate's signal exact — a single statement-wide
  // graph would have to shed candidates under the mask/node budgets.
  memo_->BeginStatement(&q);
  AnalyzePartitioned(q, *pool_, *memo_, ibg_node_budget_, &instances_,
                     analysis_pool_);
}

void AnalyzePartitioned(const Statement& q, const IndexPool& pool,
                        const WhatIfOptimizer& optimizer,
                        size_t ibg_node_budget,
                        std::vector<WfaInstance>* instances,
                        WorkerPool* workers) {
  const std::vector<TableId> tables = StatementTables(q);
  auto analyze_part = [&](WfaInstance& instance) {
    const std::vector<IndexId>& members = instance.members();
    std::vector<IndexId> relevant = RelevantCandidates(tables, pool, members);
    if (relevant.empty()) {
      // The statement cannot touch this part: a constant cost function
      // leaves the work-function differentials (hence all decisions)
      // unchanged, so skip the what-if machinery entirely.
      instance.AnalyzeQuery([](Mask) { return 0.0; });
      return;
    }
    IndexBenefitGraph ibg(q, optimizer, relevant, ibg_node_budget);
    std::vector<int> ibg_bit(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      ibg_bit[i] = ibg.BitOf(members[i]);
    }
    instance.AnalyzeQuery([&](Mask part_mask) {
      Mask m = 0;
      Mask rest = part_mask;
      while (rest != 0) {
        int bit = LowestBit(rest);
        rest &= rest - 1;
        int ib = ibg_bit[static_cast<size_t>(bit)];
        if (ib >= 0) m |= Mask{1} << ib;
      }
      return ibg.CostOf(m);
    });
  };

  if (workers == nullptr || instances->size() <= 1) {
    for (WfaInstance& instance : *instances) analyze_part(instance);
    return;
  }
  // Parallel fan-out, joined before the statement completes: task i owns
  // instance i exclusively, so the statement-level serialization contract
  // (parallel replay == serial replay, bit for bit) is preserved.
  workers->ParallelFor(instances->size(), [&](size_t i) {
    analyze_part((*instances)[i]);
  });
}

IndexSet WfaPlus::Recommendation() const {
  IndexSet out;
  for (const WfaInstance& instance : instances_) {
    out = out.Union(instance.RecommendationSet());
  }
  return out;
}

void WfaPlus::Feedback(const IndexSet& f_plus, const IndexSet& f_minus) {
  for (WfaInstance& instance : instances_) {
    instance.ApplyFeedback(instance.ToMask(f_plus),
                           instance.ToMask(f_minus));
  }
  ++feedback_events_;
}

WfaPlusState WfaPlus::ExportState() const {
  WfaPlusState state;
  state.instance_members.reserve(instances_.size());
  state.work_values.reserve(instances_.size());
  state.current_recs.reserve(instances_.size());
  for (const WfaInstance& instance : instances_) {
    state.instance_members.push_back(instance.members());
    state.work_values.push_back(instance.work_values());
    state.current_recs.push_back(instance.recommendation());
  }
  state.feedback_events = feedback_events_;
  return state;
}

Status WfaPlus::RestoreState(const WfaPlusState& state) {
  if (state.instance_members.size() != instances_.size() ||
      state.work_values.size() != instances_.size() ||
      state.current_recs.size() != instances_.size()) {
    return Status::InvalidArgument(
        "wfa+ state: part count does not match this partition");
  }
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (state.instance_members[i] != instances_[i].members()) {
      return Status::InvalidArgument(
          "wfa+ state: member list does not match this partition");
    }
    const size_t n = size_t{1} << state.instance_members[i].size();
    if (state.work_values[i].size() != n || state.current_recs[i] >= n) {
      return Status::InvalidArgument("wfa+ state: work function shape");
    }
  }
  const CostModel& model = optimizer_->cost_model();
  std::vector<WfaInstance> instances;
  instances.reserve(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    instances.push_back(WfaInstance(state.instance_members[i], model,
                                    state.work_values[i],
                                    state.current_recs[i]));
  }
  instances_ = std::move(instances);
  feedback_events_ = state.feedback_events;
  return Status::Ok();
}

size_t WfaPlus::TotalStates() const {
  size_t total = 0;
  for (const WfaInstance& instance : instances_) {
    total += instance.num_states();
  }
  return total;
}

}  // namespace wfit
