// chooseCands (Sec. 5.2.2, Fig. 6): online maintenance of the candidate set
// and its stable partition. Per statement it (1) extracts interesting
// indices into the growing universe U, (2) builds the statement's IBG,
// (3) refreshes benefit/interaction statistics, (4) picks the top idxCnt
// indices (topIndices) keeping materialized ones, and (5) re-partitions
// under the stateCnt bound (core/partition.h).
#ifndef WFIT_CORE_CANDIDATES_H_
#define WFIT_CORE_CANDIDATES_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/partition.h"
#include "core/stats.h"
#include "ibg/ibg.h"
#include "optimizer/index_extractor.h"

namespace wfit {

class WorkerPool;

struct CandidateOptions {
  /// Upper bound on monitored indices (paper: idxCnt, default 40).
  size_t idx_cnt = 40;
  /// Upper bound on Σ 2^|Dm| (paper: stateCnt, default 500).
  size_t state_cnt = 500;
  /// Statistics window (paper: histSize, default 100).
  size_t hist_size = 100;
  /// Randomized partition-search iterations (paper: RAND_CNT).
  int rand_cnt = 10;
  /// Per-query IBG candidate cap (masks are 32-bit).
  size_t ibg_cap = 25;
  /// Per-query what-if budget: IBG node closure limit (paper: 5-100 calls
  /// per query). Exceeding it sheds the lowest-benefit candidates.
  size_t ibg_node_budget = 150;
  /// topIndices scores a non-monitored index as
  ///   benefit*(b) − creation_penalty_factor · δ+(b).
  /// The paper uses factor 1; benefit* is a per-statement average while δ+
  /// is absolute, so the default scales by 1/histSize (see DESIGN.md).
  double creation_penalty_factor = 0.01;
  ExtractorOptions extractor;
};

/// The selector's complete mutable state — what persist/ snapshots so a
/// restarted WFIT resumes candidate maintenance exactly where it left off:
/// the candidate universe U, the workload position, the RNG stream position
/// of choosePartition's randomized search, and the windowed
/// benefit/interaction statistics.
struct SelectorState {
  IndexSet universe;
  uint64_t position = 0;
  /// Rng::SaveState text for the partition-search engine.
  std::string rng_state;
  /// idxStats windows, sorted by index id, entries oldest first.
  std::vector<std::pair<IndexId, std::vector<std::pair<uint64_t, double>>>>
      benefit_windows;
  /// intStats windows keyed by packed pair key, sorted, oldest first.
  std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
      interaction_windows;
};

/// Result of analyzing one statement.
struct CandidateAnalysis {
  /// The new stable partition {D1, ..., DM}.
  std::vector<IndexSet> partition;
  /// The statement's IBG (over the query-relevant slice of U); reused by
  /// WFIT to feed the per-part cost functions.
  std::shared_ptr<IndexBenefitGraph> ibg;
};

class CandidateSelector {
 public:
  CandidateSelector(IndexPool* pool, const WhatIfOptimizer* optimizer,
                    const CandidateOptions& options, uint64_t seed);

  /// Fans the statement-wide IBG's what-if probes across `pool`
  /// (nullptr = serial). Deterministic: chooseCands' outcome is
  /// independent of the pool width.
  void SetAnalysisPool(WorkerPool* pool) { analysis_pool_ = pool; }

  /// Runs chooseCands for the next statement. `materialized` is the set M
  /// the DBA currently has built (always retained as candidates);
  /// `current_partition` seeds both topIndices scoring and the baseline
  /// partition.
  CandidateAnalysis ChooseCands(const Statement& q,
                                const IndexSet& materialized,
                                const std::vector<IndexSet>& current_partition);

  /// Adds an index to the universe (e.g. a DBA vote on an unmonitored
  /// index) so the next statement can consider it.
  void AddToUniverse(IndexId id) { universe_.Add(id); }

  /// Statement weight for honest sampling: each analyzed statement's
  /// benefit contribution to idxStats is multiplied by `weight`
  /// (1/sample_rate under uniform sampling, so windowed averages remain
  /// unbiased for the full stream). 1.0 is bit-identical to unscaled.
  void SetStatementWeight(double weight) { statement_weight_ = weight; }

  uint64_t statements_seen() const { return position_; }
  const IndexSet& universe() const { return universe_; }
  const BenefitStats& benefit_stats() const { return idx_stats_; }
  const InteractionStats& interaction_stats() const { return int_stats_; }

  /// Snapshot hooks (persist/): ExportState captures, RestoreState replaces
  /// the selector's mutable state. Restoring fails (InvalidArgument, state
  /// untouched except already-restored windows) only on an unparseable RNG
  /// state. Options and seed stay with the constructor.
  SelectorState ExportState() const;
  Status RestoreState(const SelectorState& state);

 private:
  /// topIndices(X, u): up to u ids from X with the highest scores.
  /// `benefit_of[i]` is the precomputed current benefit of the i-th
  /// universe id (aligned with universe_.ids()).
  std::vector<IndexId> TopIndices(const std::vector<IndexId>& x, size_t u,
                                  const IndexSet& monitored,
                                  const std::vector<double>& benefit_of) const;

  /// The precomputed benefit of universe member `a` from a scratch vector
  /// aligned with universe_.ids().
  double UniverseBenefit(IndexId a,
                         const std::vector<double>& benefit_of) const;

  IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
  CandidateOptions options_;
  Rng rng_;
  WorkerPool* analysis_pool_ = nullptr;
  IndexSet universe_;          // U
  BenefitStats idx_stats_;     // idxStats
  InteractionStats int_stats_; // intStats
  uint64_t position_ = 0;      // statements analyzed (1-based after ++)
  double statement_weight_ = 1.0;
  // Per-statement scratch, hoisted so ChooseCands is allocation-stable:
  // current benefit per universe id (computed once per statement — the
  // ranking sort and topIndices both read it instead of re-walking the
  // stats windows per comparison). choosePartition's own doi memoization
  // lives inside ChoosePartition (core/partition.cc: dense doi matrix +
  // cross-loss cache).
  std::vector<double> benefit_scratch_;
  std::vector<IndexId> relevant_scratch_;
  std::vector<IndexId> not_materialized_scratch_;
};

}  // namespace wfit

#endif  // WFIT_CORE_CANDIDATES_H_
