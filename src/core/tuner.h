// The common interface of online index advisors in this library. The
// experiment harness drives any Tuner through the paper's protocol:
// AnalyzeQuery per statement, Recommendation afterwards, Feedback for DBA
// votes (explicit or implicit).
#ifndef WFIT_CORE_TUNER_H_
#define WFIT_CORE_TUNER_H_

#include <cstdint>
#include <string>

#include "core/index_set.h"
#include "workload/statement.h"

namespace wfit {

class WorkerPool;

/// What-if memoization counters exposed by tuners that deduplicate
/// optimizer probes (hit_rate is the paper-relevant savings: every hit is
/// one optimizer invocation avoided).
struct WhatIfCacheCounters {
  /// Statement-scoped tier: identical probes within one statement.
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Cross-statement tier: probes answered from an earlier structurally
  /// identical statement (repeated templates).
  uint64_t cross_hits = 0;

  uint64_t probes() const { return hits + cross_hits + misses; }
  double hit_rate() const {
    uint64_t p = probes();
    return p == 0 ? 0.0
                  : static_cast<double>(hits + cross_hits) /
                        static_cast<double>(p);
  }
  double cross_hit_rate() const {
    uint64_t p = probes();
    return p == 0 ? 0.0
                  : static_cast<double>(cross_hits) / static_cast<double>(p);
  }
};

class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Observes the next workload statement and updates internal state.
  virtual void AnalyzeQuery(const Statement& q) = 0;

  /// Current recommended configuration (the paper's S_n).
  virtual IndexSet Recommendation() const = 0;

  /// DBA votes: F+ receives positive votes, F− negative votes. Tuners
  /// without feedback support (e.g. BC) ignore them.
  virtual void Feedback(const IndexSet& f_plus, const IndexSet& f_minus) {
    (void)f_plus;
    (void)f_minus;
  }

  /// Display name for reports.
  virtual std::string name() const = 0;

  /// Number of internal state reorganizations performed so far (WFIT's
  /// repartitions). Drivers — the experiment harness and the online
  /// tuning service — report it; tuners without the notion return 0.
  virtual uint64_t RepartitionCount() const { return 0; }

  /// Supplies a worker pool for intra-statement parallel analysis (WFIT
  /// fans per-part IBG construction and WFA updates across it). nullptr
  /// restores serial analysis; tuners without parallel support ignore it.
  /// Must not be called while AnalyzeQuery is in flight.
  virtual void SetAnalysisPool(WorkerPool* pool) { (void)pool; }

  /// Cumulative what-if memoization counters; zeros for tuners without a
  /// probe cache.
  virtual WhatIfCacheCounters WhatIfCache() const { return {}; }

  /// Weight applied to the NEXT statements' contribution to windowed
  /// statistics. The overload controller sets 1/sample_rate while it
  /// uniformly samples the workload, so per-statement benefit averages
  /// stay unbiased estimates of the full stream (WFIT's windows are
  /// means over recent statements; scaling the surviving samples keeps
  /// the expectation honest). Weight 1.0 is bit-identical to no scaling.
  /// Tuners without windowed statistics ignore it.
  virtual void SetStatementWeight(double weight) { (void)weight; }
};

}  // namespace wfit

#endif  // WFIT_CORE_TUNER_H_
