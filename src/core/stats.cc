#include "core/stats.h"

#include <algorithm>

namespace wfit {

void RecencyWindow::Record(uint64_t n, double value) {
  WFIT_CHECK(entries_.empty() || entries_.front().first <= n,
             "RecencyWindow positions must be non-decreasing");
  entries_.emplace_front(n, value);
  if (entries_.size() > hist_size_) entries_.pop_back();
}

double RecencyWindow::CurrentValue(uint64_t now) const {
  if (entries_.empty()) return 0.0;
  double best = 0.0;
  double sum = 0.0;
  for (const auto& [n, v] : entries_) {  // newest -> oldest
    sum += v;
    // now >= n always holds; the window spans the most recent now-n+1
    // statements.
    double denom = static_cast<double>(now - n + 1);
    best = std::max(best, sum / denom);
  }
  return best;
}

void BenefitStats::Record(IndexId a, uint64_t n, double beta) {
  if (beta <= 0.0) return;
  auto [it, inserted] = windows_.try_emplace(a, hist_size_);
  it->second.Record(n, beta);
}

double BenefitStats::CurrentBenefit(IndexId a, uint64_t now) const {
  auto it = windows_.find(a);
  if (it == windows_.end()) return 0.0;
  return it->second.CurrentValue(now);
}

uint64_t InteractionStats::Key(IndexId a, IndexId b) {
  IndexId lo = std::min(a, b);
  IndexId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void InteractionStats::Record(IndexId a, IndexId b, uint64_t n, double d) {
  if (d <= 0.0) return;
  WFIT_CHECK(a != b, "interaction of an index with itself");
  auto [it, inserted] = windows_.try_emplace(Key(a, b), hist_size_);
  it->second.Record(n, d);
}

double InteractionStats::CurrentDoi(IndexId a, IndexId b, uint64_t now) const {
  auto it = windows_.find(Key(a, b));
  if (it == windows_.end()) return 0.0;
  return it->second.CurrentValue(now);
}

bool InteractionStats::HasInteraction(IndexId a, IndexId b) const {
  return windows_.count(Key(a, b)) != 0;
}

}  // namespace wfit
