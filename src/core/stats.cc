#include "core/stats.h"

#include <algorithm>

namespace wfit {

void RecencyWindow::Record(uint64_t n, double value) {
  WFIT_CHECK(buf_.empty() || buf_[newest_].first <= n,
             "RecencyWindow positions must be non-decreasing");
  if (hist_size_ == 0) return;  // history disabled: window stays empty
  if (buf_.size() < hist_size_) {
    buf_.emplace_back(n, value);
    newest_ = buf_.size() - 1;
  } else {
    newest_ = (newest_ + 1) % hist_size_;
    buf_[newest_] = {n, value};  // overwrites the oldest slot
  }
}

double RecencyWindow::CurrentValue(uint64_t now) const {
  if (buf_.empty()) return 0.0;
  double best = 0.0;
  double sum = 0.0;
  const size_t count = buf_.size();
  size_t idx = newest_;
  for (size_t i = 0; i < count; ++i) {  // newest -> oldest
    const auto& [n, v] = buf_[idx];
    sum += v;
    // now >= n always holds; the window spans the most recent now-n+1
    // statements.
    double denom = static_cast<double>(now - n + 1);
    best = std::max(best, sum / denom);
    idx = (idx + count - 1) % count;
  }
  return best;
}

std::vector<std::pair<uint64_t, double>> RecencyWindow::Entries() const {
  std::vector<std::pair<uint64_t, double>> out;
  if (buf_.empty()) return out;
  out.reserve(buf_.size());
  const size_t count = buf_.size();
  size_t idx = (newest_ + 1) % count;  // oldest slot (0 until the ring wraps)
  for (size_t i = 0; i < count; ++i) {
    out.push_back(buf_[idx]);
    idx = (idx + 1) % count;
  }
  return out;
}

void RecencyWindow::RestoreEntries(
    const std::vector<std::pair<uint64_t, double>>& oldest_first) {
  buf_.clear();
  newest_ = 0;
  for (const auto& [n, v] : oldest_first) Record(n, v);
}

void BenefitStats::Record(IndexId a, uint64_t n, double beta) {
  if (beta <= 0.0) return;
  auto [it, inserted] = windows_.try_emplace(a, hist_size_);
  it->second.Record(n, beta);
}

double BenefitStats::CurrentBenefit(IndexId a, uint64_t now) const {
  auto it = windows_.find(a);
  if (it == windows_.end()) return 0.0;
  return it->second.CurrentValue(now);
}

std::vector<std::pair<IndexId, std::vector<std::pair<uint64_t, double>>>>
BenefitStats::Export() const {
  std::vector<std::pair<IndexId, std::vector<std::pair<uint64_t, double>>>>
      out;
  out.reserve(windows_.size());
  for (const auto& [id, window] : windows_) {
    out.emplace_back(id, window.Entries());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void BenefitStats::RestoreWindow(
    IndexId a, const std::vector<std::pair<uint64_t, double>>& entries) {
  auto [it, inserted] = windows_.insert_or_assign(a, RecencyWindow(hist_size_));
  (void)inserted;
  it->second.RestoreEntries(entries);
}

uint64_t InteractionStats::Key(IndexId a, IndexId b) {
  IndexId lo = std::min(a, b);
  IndexId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

void InteractionStats::Record(IndexId a, IndexId b, uint64_t n, double d) {
  if (d <= 0.0) return;
  WFIT_CHECK(a != b, "interaction of an index with itself");
  auto [it, inserted] = windows_.try_emplace(Key(a, b), hist_size_);
  it->second.Record(n, d);
}

double InteractionStats::CurrentDoi(IndexId a, IndexId b, uint64_t now) const {
  auto it = windows_.find(Key(a, b));
  if (it == windows_.end()) return 0.0;
  return it->second.CurrentValue(now);
}

bool InteractionStats::HasInteraction(IndexId a, IndexId b) const {
  return windows_.count(Key(a, b)) != 0;
}

std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
InteractionStats::Export() const {
  std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
      out;
  out.reserve(windows_.size());
  for (const auto& [key, window] : windows_) {
    out.emplace_back(key, window.Entries());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void InteractionStats::RestoreWindow(
    uint64_t key, const std::vector<std::pair<uint64_t, double>>& entries) {
  auto [it, inserted] =
      windows_.insert_or_assign(key, RecencyWindow(hist_size_));
  (void)inserted;
  it->second.RestoreEntries(entries);
}

}  // namespace wfit
