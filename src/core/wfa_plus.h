// WFA+ (Sec. 4.2): divide-and-conquer WFA over a stable partition
// {C1, ..., CK}. One WfaInstance per part; per statement, each
// statement-relevant part gets its own (small) benefit graph supplying its
// cost function. Recommendations are the union of per-part recommendations;
// Theorem 4.2 (equivalence with monolithic WFA on stable partitions) is
// property-tested.
//
// The per-part work — IBG node closure plus the WFA min-plus update — is
// independent across parts (the paper's own decomposition, Sec. 5/Fig. 6),
// so AnalyzePartitioned optionally fans it out across a WorkerPool and
// joins before the statement completes. Results are bit-for-bit identical
// to the serial loop: each task touches only its own WfaInstance, and the
// shared what-if layer is a pure function of (statement, configuration).
//
// This class is also the paper's "WFIT with a fixed stable partition"
// configuration used throughout the evaluation (Figs. 8–11); the full WFIT
// with automatic candidate maintenance builds on top of it (core/wfit.h).
#ifndef WFIT_CORE_WFA_PLUS_H_
#define WFIT_CORE_WFA_PLUS_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "core/tuner.h"
#include "core/work_function.h"
#include "ibg/ibg.h"
#include "optimizer/caching_what_if.h"

namespace wfit {

/// The complete mutable state of a WfaPlus tuner (persist/ snapshots): the
/// per-part work functions and recommendations. The stable partition itself
/// is a constructor argument, so restore validates the member lists against
/// it instead of replacing it.
struct WfaPlusState {
  std::vector<std::vector<IndexId>> instance_members;
  std::vector<std::vector<double>> work_values;
  std::vector<Mask> current_recs;
  uint64_t feedback_events = 0;
};

/// The sorted set of tables `q` touches (hoisted out of RelevantCandidates
/// so per-part filtering rebuilds it once per statement, not once per part).
std::vector<TableId> StatementTables(const Statement& q);

/// Candidates from `universe` that can influence a statement touching
/// `tables` (sorted): indices on those tables, capped at `cap` (IBG masks
/// are 32-bit). Deterministic.
std::vector<IndexId> RelevantCandidates(const std::vector<TableId>& tables,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap = 25);

/// Convenience overload deriving the table set from `q` directly.
std::vector<IndexId> RelevantCandidates(const Statement& q,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap = 25);

/// Runs one statement through a set of per-part WFA instances, building one
/// IBG per statement-relevant part (shared by WfaPlus, Wfit and tests).
/// With a non-null `workers`, per-part work runs on the pool (plus the
/// calling thread) and joins before returning; the outcome is identical to
/// the serial loop.
void AnalyzePartitioned(const Statement& q, const IndexPool& pool,
                        const WhatIfOptimizer& optimizer,
                        size_t ibg_node_budget,
                        std::vector<WfaInstance>* instances,
                        WorkerPool* workers = nullptr);

class WfaPlus : public Tuner {
 public:
  /// `partition` is the stable partition {C1,...,CK}; parts must be
  /// disjoint. The initial configuration is intersected with each part.
  /// `ibg_node_budget` bounds per-statement what-if calls (the paper's
  /// prototype consumed 5-100 per query); currently-recommended indices are
  /// shed last when the budget forces truncation.
  WfaPlus(const IndexPool* pool, const WhatIfOptimizer* optimizer,
          std::vector<IndexSet> partition, const IndexSet& initial_config,
          std::string display_name = "WFA+", size_t ibg_node_budget = 300,
          const CrossStatementCacheOptions& cross_cache = {});

  void AnalyzeQuery(const Statement& q) override;
  IndexSet Recommendation() const override;
  void Feedback(const IndexSet& f_plus, const IndexSet& f_minus) override;
  std::string name() const override { return name_; }

  void SetAnalysisPool(WorkerPool* pool) override { analysis_pool_ = pool; }
  WhatIfCacheCounters WhatIfCache() const override {
    return {memo_->hits(), memo_->misses(), memo_->cross_hits()};
  }

  const std::vector<IndexSet>& partition() const { return partition_; }
  const std::vector<WfaInstance>& instances() const { return instances_; }
  /// All monitored candidates (∪k Ck).
  const std::vector<IndexId>& candidates() const { return all_members_; }

  /// Σk 2^|Ck| — the paper's stateCnt measure of bookkeeping size.
  size_t TotalStates() const;

  /// DBA votes applied so far (persisted alongside the work functions).
  uint64_t FeedbackCount() const { return feedback_events_; }

  /// Snapshot hooks (persist/): ExportState captures the per-part state;
  /// RestoreState replaces it on a tuner constructed with the same
  /// (pool, optimizer, partition, ...) arguments. Returns InvalidArgument
  /// (state unchanged) if the member lists or shapes don't line up with
  /// this tuner's partition.
  WfaPlusState ExportState() const;
  Status RestoreState(const WfaPlusState& state);

 private:
  const IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
  /// Statement-scoped probe memo layered over optimizer_; per-part IBGs of
  /// one statement dedupe their configuration probes through it.
  std::unique_ptr<CachingWhatIfOptimizer> memo_;
  WorkerPool* analysis_pool_ = nullptr;
  std::vector<IndexSet> partition_;
  std::vector<WfaInstance> instances_;
  std::vector<IndexId> all_members_;
  std::string name_;
  size_t ibg_node_budget_;
  uint64_t feedback_events_ = 0;
};

}  // namespace wfit

#endif  // WFIT_CORE_WFA_PLUS_H_
