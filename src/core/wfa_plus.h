// WFA+ (Sec. 4.2): divide-and-conquer WFA over a stable partition
// {C1, ..., CK}. One WfaInstance per part; per statement, a single IBG over
// the statement-relevant candidates supplies every part's cost function.
// Recommendations are the union of per-part recommendations; Theorem 4.2
// (equivalence with monolithic WFA on stable partitions) is property-tested.
//
// This class is also the paper's "WFIT with a fixed stable partition"
// configuration used throughout the evaluation (Figs. 8–11); the full WFIT
// with automatic candidate maintenance builds on top of it (core/wfit.h).
#ifndef WFIT_CORE_WFA_PLUS_H_
#define WFIT_CORE_WFA_PLUS_H_

#include <memory>
#include <vector>

#include "core/tuner.h"
#include "core/work_function.h"
#include "ibg/ibg.h"

namespace wfit {

/// Candidates from `universe` that can influence `q`: indices on tables the
/// statement touches, capped at `cap` (IBG masks are 32-bit). Deterministic.
std::vector<IndexId> RelevantCandidates(const Statement& q,
                                        const IndexPool& pool,
                                        const std::vector<IndexId>& universe,
                                        size_t cap = 25);

/// Runs one statement through a set of per-part WFA instances, building one
/// IBG per statement-relevant part (shared by WfaPlus, Wfit and tests).
void AnalyzePartitioned(const Statement& q, const IndexPool& pool,
                        const WhatIfOptimizer& optimizer,
                        size_t ibg_node_budget,
                        std::vector<WfaInstance>* instances);

class WfaPlus : public Tuner {
 public:
  /// `partition` is the stable partition {C1,...,CK}; parts must be
  /// disjoint. The initial configuration is intersected with each part.
  /// `ibg_node_budget` bounds per-statement what-if calls (the paper's
  /// prototype consumed 5-100 per query); currently-recommended indices are
  /// shed last when the budget forces truncation.
  WfaPlus(const IndexPool* pool, const WhatIfOptimizer* optimizer,
          std::vector<IndexSet> partition, const IndexSet& initial_config,
          std::string display_name = "WFA+", size_t ibg_node_budget = 300);

  void AnalyzeQuery(const Statement& q) override;
  IndexSet Recommendation() const override;
  void Feedback(const IndexSet& f_plus, const IndexSet& f_minus) override;
  std::string name() const override { return name_; }

  const std::vector<IndexSet>& partition() const { return partition_; }
  const std::vector<WfaInstance>& instances() const { return instances_; }
  /// All monitored candidates (∪k Ck).
  const std::vector<IndexId>& candidates() const { return all_members_; }

  /// Σk 2^|Ck| — the paper's stateCnt measure of bookkeeping size.
  size_t TotalStates() const;

 private:
  const IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
  std::vector<IndexSet> partition_;
  std::vector<WfaInstance> instances_;
  std::vector<IndexId> all_members_;
  std::string name_;
  size_t ibg_node_budget_;
};

}  // namespace wfit

#endif  // WFIT_CORE_WFA_PLUS_H_
