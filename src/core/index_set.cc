#include "core/index_set.h"

#include <algorithm>

namespace wfit {

IndexSet::IndexSet(std::initializer_list<IndexId> ids) : ids_(ids) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IndexSet IndexSet::FromVector(std::vector<IndexId> ids) {
  IndexSet out;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  out.ids_ = std::move(ids);
  return out;
}

bool IndexSet::Contains(IndexId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool IndexSet::Add(IndexId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return false;
  ids_.insert(it, id);
  return true;
}

bool IndexSet::Remove(IndexId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

IndexSet IndexSet::Union(const IndexSet& other) const {
  IndexSet out;
  out.ids_.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IndexSet IndexSet::Intersect(const IndexSet& other) const {
  IndexSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IndexSet IndexSet::Minus(const IndexSet& other) const {
  IndexSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

bool IndexSet::IsSubsetOf(const IndexSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

size_t IndexSet::Hash() const {
  size_t h = 1469598103934665603ull;
  for (IndexId id : ids_) {
    h ^= id + 1;
    h *= 1099511628211ull;
  }
  return h;
}

std::string IndexSet::ToString(const IndexPool& pool) const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += pool.Name(ids_[i]);
  }
  out += "}";
  return out;
}

std::string IndexSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace wfit
