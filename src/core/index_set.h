// IndexSet: a set of interned IndexIds, the "configuration" X ⊆ I of the
// paper. Stored as a sorted vector: configurations are tiny (tens of ids),
// and sorted storage gives cheap deterministic iteration, set algebra and
// hashing.
#ifndef WFIT_CORE_INDEX_SET_H_
#define WFIT_CORE_INDEX_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "catalog/index.h"

namespace wfit {

class IndexSet {
 public:
  IndexSet() = default;
  IndexSet(std::initializer_list<IndexId> ids);
  /// Builds from an arbitrary (possibly unsorted, duplicated) vector.
  static IndexSet FromVector(std::vector<IndexId> ids);

  bool Contains(IndexId id) const;
  /// Inserts `id`; returns true if it was not already present.
  bool Add(IndexId id);
  /// Removes `id`; returns true if it was present.
  bool Remove(IndexId id);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }
  const std::vector<IndexId>& ids() const { return ids_; }

  IndexSet Union(const IndexSet& other) const;
  IndexSet Intersect(const IndexSet& other) const;
  IndexSet Minus(const IndexSet& other) const;
  bool IsSubsetOf(const IndexSet& other) const;

  friend bool operator==(const IndexSet& a, const IndexSet& b) {
    return a.ids_ == b.ids_;
  }
  friend bool operator!=(const IndexSet& a, const IndexSet& b) {
    return !(a == b);
  }

  /// FNV-style hash over the sorted contents (for memo caches).
  size_t Hash() const;

  /// "{ix_a, ix_b}" using the pool's display names.
  std::string ToString(const IndexPool& pool) const;
  /// "{3, 7, 12}" raw ids.
  std::string ToString() const;

 private:
  std::vector<IndexId> ids_;  // sorted, unique
};

struct IndexSetHash {
  size_t operator()(const IndexSet& s) const { return s.Hash(); }
};

}  // namespace wfit

#endif  // WFIT_CORE_INDEX_SET_H_
