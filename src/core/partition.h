// Stable-partition selection (Sec. 5.2.2, Fig. 7): clusters candidate
// indices so that strongly-interacting indices share a part, subject to the
// stateCnt bound Σm 2^|Dm| ≤ stateCnt. Ignored interactions contribute to
// loss(P) = Σ cross-part doi*; the randomized merge search minimizes it.
#ifndef WFIT_CORE_PARTITION_H_
#define WFIT_CORE_PARTITION_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/index_set.h"

namespace wfit {

/// doi*_N lookup for a pair of candidates.
using DoiFn = std::function<double(IndexId, IndexId)>;

struct PartitionOptions {
  /// Upper bound on Σm 2^|Dm| (the paper's stateCnt knob).
  size_t state_cnt = 500;
  /// Randomized iterations (the paper's RAND_CNT).
  int rand_cnt = 10;
  /// Hard per-part cap (work functions are dense arrays).
  size_t max_part_size = 16;
};

/// Σ of doi over pairs that cross part boundaries.
double PartitionLoss(const std::vector<IndexSet>& parts, const DoiFn& doi);

/// Number of work-function states the partition needs: Σm 2^|Dm|.
size_t PartitionStates(const std::vector<IndexSet>& parts);

/// Canonical form: parts ordered by their smallest member. Two equal
/// partitions compare equal as vectors after canonicalization.
void CanonicalizePartition(std::vector<IndexSet>* parts);

/// Fig. 7: chooses a partition of `indices` minimizing loss, considering
/// the (restricted) current partition as a baseline plus rand_cnt
/// randomized merge searches. Requires 2·|indices| ≤ state_cnt (the
/// all-singletons partition must be feasible).
std::vector<IndexSet> ChoosePartition(
    const std::vector<IndexId>& indices,
    const std::vector<IndexSet>& current_partition, const DoiFn& doi,
    const PartitionOptions& options, Rng* rng);

}  // namespace wfit

#endif  // WFIT_CORE_PARTITION_H_
