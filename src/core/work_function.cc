#include "core/work_function.h"

#include <algorithm>
#include <cmath>

namespace wfit {

namespace {

/// Cost comparisons tolerate accumulated floating-point error; scores are
/// sums of what-if costs, so a relative epsilon is required.
bool NearlyEqual(double a, double b) {
  double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

}  // namespace

WfaInstance::WfaInstance(std::vector<IndexId> members,
                         const CostModel& cost_model, Mask initial_config)
    : members_(std::move(members)) {
  WFIT_CHECK(members_.size() <= 20, "part too large for a WFA instance");
  InitCosts(cost_model);
  const size_t n = size_t{1} << members_.size();
  WFIT_CHECK(initial_config < n, "initial config outside the part");
  w_.resize(n);
  for (Mask s = 0; s < n; ++s) {
    w_[s] = Delta(initial_config, s);
  }
  curr_rec_ = initial_config;
}

WfaInstance::WfaInstance(std::vector<IndexId> members,
                         const CostModel& cost_model,
                         std::vector<double> work_function, Mask current_rec)
    : members_(std::move(members)), w_(std::move(work_function)) {
  WFIT_CHECK(members_.size() <= 20, "part too large for a WFA instance");
  InitCosts(cost_model);
  WFIT_CHECK(w_.size() == (size_t{1} << members_.size()),
             "work function size mismatch");
  WFIT_CHECK(current_rec < w_.size(), "current rec outside the part");
  curr_rec_ = current_rec;
}

WfaInstance::WfaInstance(std::vector<IndexId> members,
                         std::vector<double> create_costs,
                         std::vector<double> drop_costs, Mask initial_config)
    : members_(std::move(members)),
      create_cost_(std::move(create_costs)),
      drop_cost_(std::move(drop_costs)) {
  WFIT_CHECK(members_.size() <= 20, "part too large for a WFA instance");
  WFIT_CHECK(create_cost_.size() == members_.size() &&
                 drop_cost_.size() == members_.size(),
             "transition cost vectors must match member count");
  const size_t n = size_t{1} << members_.size();
  WFIT_CHECK(initial_config < n, "initial config outside the part");
  w_.resize(n);
  for (Mask s = 0; s < n; ++s) {
    w_[s] = Delta(initial_config, s);
  }
  curr_rec_ = initial_config;
}

WfaInstance::WfaInstance(std::vector<IndexId> members,
                         std::vector<double> create_costs,
                         std::vector<double> drop_costs,
                         std::vector<double> work_function, Mask current_rec)
    : members_(std::move(members)),
      create_cost_(std::move(create_costs)),
      drop_cost_(std::move(drop_costs)),
      w_(std::move(work_function)) {
  WFIT_CHECK(members_.size() <= 20, "part too large for a WFA instance");
  WFIT_CHECK(create_cost_.size() == members_.size() &&
                 drop_cost_.size() == members_.size(),
             "transition cost vectors must match member count");
  WFIT_CHECK(w_.size() == (size_t{1} << members_.size()),
             "work function size mismatch");
  WFIT_CHECK(current_rec < w_.size(), "current rec outside the part");
  curr_rec_ = current_rec;
}

void WfaInstance::InitCosts(const CostModel& cost_model) {
  create_cost_.reserve(members_.size());
  drop_cost_.reserve(members_.size());
  for (IndexId id : members_) {
    create_cost_.push_back(cost_model.CreateCost(id));
    drop_cost_.push_back(cost_model.DropCost(id));
  }
}

double WfaInstance::Delta(Mask from, Mask to) const {
  double cost = 0.0;
  Mask created = to & ~from;
  Mask dropped = from & ~to;
  while (created != 0) {
    int bit = LowestBit(created);
    created &= created - 1;
    cost += create_cost_[static_cast<size_t>(bit)];
  }
  while (dropped != 0) {
    int bit = LowestBit(dropped);
    dropped &= dropped - 1;
    cost += drop_cost_[static_cast<size_t>(bit)];
  }
  return cost;
}

void WfaInstance::Relax(std::vector<double>* v) const {
  // min_X { v[X] + δ(X, S) } for all S: since δ is a per-coordinate sum,
  // one simultaneous relaxation per coordinate is exact (distance transform
  // on the hypercube). Within a coordinate the two directions cannot chain
  // (δ+ and δ− are non-negative), so the pairwise update is simultaneous.
  std::vector<double>& vals = *v;
  const size_t n = vals.size();
  for (size_t bit = 0; bit < members_.size(); ++bit) {
    const Mask m = Mask{1} << bit;
    const double up = create_cost_[bit];    // 0 -> 1 transition
    const double down = drop_cost_[bit];    // 1 -> 0 transition
    for (Mask s = 0; s < n; ++s) {
      if ((s & m) != 0) continue;
      const Mask s1 = s | m;
      const double v0 = vals[s];
      const double v1 = vals[s1];
      vals[s] = std::min(v0, v1 + down);
      vals[s1] = std::min(v1, v0 + up);
    }
  }
}

void WfaInstance::AnalyzeQuery(const PartCostFn& cost) {
  const size_t n = w_.size();
  // Stage 1: new work function w'[S] = min_X { w[X] + cost(X) + δ(X, S) }.
  // Both buffers are filled in one pass and the relaxed one is swapped
  // into w_ at the end (double-buffering instead of a per-statement copy).
  v_scratch_.resize(n);
  relax_scratch_.resize(n);
  for (Mask s = 0; s < n; ++s) {
    const double v = w_[s] + cost(s);
    v_scratch_[s] = v;
    relax_scratch_[s] = v;
  }
  std::vector<double>& relaxed = relax_scratch_;
  Relax(&relaxed);

  // Stage 2: recommendation = argmin score(S) among S with S ∈ p[S], i.e.
  // states whose new work function took the "no final transition" path:
  // w'[S] == w[S] + cost(S). Lemma 9.2 of Borodin & El-Yaniv guarantees a
  // minimum-score state satisfies this.
  bool have_best = false;
  Mask best = 0;
  double best_score = 0.0;
  for (Mask s = 0; s < n; ++s) {
    if (!NearlyEqual(relaxed[s], v_scratch_[s])) continue;  // S ∉ p[S]
    double score = relaxed[s] + Delta(s, curr_rec_);
    if (!have_best || score + 1e-12 < best_score ||
        (NearlyEqual(score, best_score) && LexPrefers(s, best))) {
      have_best = true;
      best = s;
      best_score = score;
    }
  }
  WFIT_CHECK(have_best, "no self-path state found (Lemma 9.2 violated)");
  std::swap(w_, relax_scratch_);
  curr_rec_ = best;
}

void WfaInstance::ApplyFeedback(Mask f_plus, Mask f_minus) {
  WFIT_CHECK((f_plus & f_minus) == 0, "contradictory feedback votes");
  const size_t n = w_.size();
  WFIT_CHECK(f_plus < n && f_minus < n, "feedback outside the part");
  // Consistency: the recommendation must contain F+ and avoid F−.
  curr_rec_ = (curr_rec_ & ~f_minus) | f_plus;
  // Recoverability: bump w so that inequality (5.1) holds — every state S
  // must be at least δ(S, Scons) + δ(Scons, S) worse than the new
  // recommendation, as if the workload itself had led here.
  const double w_rec = w_[curr_rec_];
  for (Mask s = 0; s < n; ++s) {
    const Mask s_cons = (s & ~f_minus) | f_plus;
    const double min_diff = Delta(s, s_cons) + Delta(s_cons, s);
    const double diff = w_[s] + Delta(s, curr_rec_) - w_rec;
    if (diff < min_diff) {
      w_[s] += min_diff - diff;
    }
  }
}

Mask WfaInstance::ToMask(const IndexSet& set) const {
  Mask m = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (set.Contains(members_[i])) m |= Mask{1} << i;
  }
  return m;
}

IndexSet WfaInstance::ToSet(Mask mask) const {
  IndexSet out;
  Mask rest = mask;
  while (rest != 0) {
    int bit = LowestBit(rest);
    rest &= rest - 1;
    out.Add(members_[static_cast<size_t>(bit)]);
  }
  return out;
}

IndexSet WfaInstance::RecommendationSet() const { return ToSet(curr_rec_); }

}  // namespace wfit
