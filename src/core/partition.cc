#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <set>

namespace wfit {

namespace {

double CrossLoss(const IndexSet& a, const IndexSet& b, const DoiFn& doi) {
  double total = 0.0;
  for (IndexId x : a) {
    for (IndexId y : b) total += doi(x, y);
  }
  return total;
}

/// States used by a part of size k: 2^k.
size_t StatesOf(size_t k) { return size_t{1} << k; }

}  // namespace

double PartitionLoss(const std::vector<IndexSet>& parts, const DoiFn& doi) {
  double total = 0.0;
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      total += CrossLoss(parts[i], parts[j], doi);
    }
  }
  return total;
}

size_t PartitionStates(const std::vector<IndexSet>& parts) {
  size_t total = 0;
  for (const IndexSet& p : parts) total += StatesOf(p.size());
  return total;
}

void CanonicalizePartition(std::vector<IndexSet>* parts) {
  parts->erase(std::remove_if(parts->begin(), parts->end(),
                              [](const IndexSet& p) { return p.empty(); }),
               parts->end());
  std::sort(parts->begin(), parts->end(),
            [](const IndexSet& a, const IndexSet& b) {
              return *a.begin() < *b.begin();
            });
}

std::vector<IndexSet> ChoosePartition(
    const std::vector<IndexId>& indices,
    const std::vector<IndexSet>& current_partition, const DoiFn& doi,
    const PartitionOptions& options, Rng* rng) {
  WFIT_CHECK(rng != nullptr, "ChoosePartition requires an Rng");
  IndexSet d = IndexSet::FromVector(indices);
  WFIT_CHECK(2 * d.size() <= options.state_cnt || d.size() <= 1,
             "state_cnt cannot accommodate even singleton parts");

  auto feasible = [&](const std::vector<IndexSet>& parts) {
    if (PartitionStates(parts) > options.state_cnt) return false;
    for (const IndexSet& p : parts) {
      if (p.size() > options.max_part_size) return false;
    }
    return true;
  };

  std::vector<IndexSet> best;
  double best_loss = std::numeric_limits<double>::infinity();
  bool have_best = false;

  // Baseline: current partition restricted to D, plus singletons for the
  // new indices (Fig. 7, lines 2-7).
  {
    std::vector<IndexSet> base;
    IndexSet covered;
    for (const IndexSet& part : current_partition) {
      IndexSet kept = part.Intersect(d);
      if (!kept.empty()) {
        covered = covered.Union(kept);
        base.push_back(std::move(kept));
      }
    }
    for (IndexId a : d) {
      if (!covered.Contains(a)) base.push_back(IndexSet{a});
    }
    if (feasible(base)) {
      best_loss = PartitionLoss(base, doi);
      best = std::move(base);
      have_best = true;
    }
  }

  // Randomized merge searches (Fig. 7, lines 8-20).
  for (int iter = 0; iter < options.rand_cnt; ++iter) {
    std::vector<IndexSet> parts;
    for (IndexId a : d) parts.push_back(IndexSet{a});

    while (true) {
      // E: mergeable pairs with positive cross loss.
      struct Candidate {
        size_t i, j;
        double loss;
        double weight;
      };
      std::vector<Candidate> e, e1;
      size_t current_states = PartitionStates(parts);
      for (size_t i = 0; i < parts.size(); ++i) {
        for (size_t j = i + 1; j < parts.size(); ++j) {
          double cross = CrossLoss(parts[i], parts[j], doi);
          if (cross <= 0.0) continue;
          size_t ni = parts[i].size(), nj = parts[j].size();
          if (ni + nj > options.max_part_size) continue;
          size_t merged_states = current_states - StatesOf(ni) -
                                 StatesOf(nj) + StatesOf(ni + nj);
          if (merged_states > options.state_cnt) continue;
          Candidate c{i, j, cross, 0.0};
          if (ni == 1 && nj == 1) {
            c.weight = cross;
            e1.push_back(c);
          } else {
            double denom = static_cast<double>(StatesOf(ni + nj) -
                                               StatesOf(ni) - StatesOf(nj));
            c.weight = cross / std::max(1.0, denom);
            e.push_back(c);
          }
        }
      }
      const std::vector<Candidate>& pool = !e1.empty() ? e1 : e;
      if (pool.empty()) break;
      std::vector<double> weights;
      weights.reserve(pool.size());
      for (const Candidate& c : pool) weights.push_back(c.weight);
      const Candidate& pick = pool[rng->PickWeighted(weights)];
      parts[pick.i] = parts[pick.i].Union(parts[pick.j]);
      parts.erase(parts.begin() + static_cast<ptrdiff_t>(pick.j));
    }

    double loss = PartitionLoss(parts, doi);
    if (!have_best || loss < best_loss) {
      best_loss = loss;
      best = std::move(parts);
      have_best = true;
    }
  }

  WFIT_CHECK(have_best, "no feasible partition found");
  CanonicalizePartition(&best);
  return best;
}

}  // namespace wfit
