#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iterator>
#include <limits>
#include <set>

namespace wfit {

namespace {

double CrossLoss(const IndexSet& a, const IndexSet& b, const DoiFn& doi) {
  double total = 0.0;
  for (IndexId x : a) {
    for (IndexId y : b) total += doi(x, y);
  }
  return total;
}

/// States used by a part of size k: 2^k.
size_t StatesOf(size_t k) { return size_t{1} << k; }

}  // namespace

double PartitionLoss(const std::vector<IndexSet>& parts, const DoiFn& doi) {
  double total = 0.0;
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      total += CrossLoss(parts[i], parts[j], doi);
    }
  }
  return total;
}

size_t PartitionStates(const std::vector<IndexSet>& parts) {
  size_t total = 0;
  for (const IndexSet& p : parts) total += StatesOf(p.size());
  return total;
}

void CanonicalizePartition(std::vector<IndexSet>* parts) {
  parts->erase(std::remove_if(parts->begin(), parts->end(),
                              [](const IndexSet& p) { return p.empty(); }),
               parts->end());
  std::sort(parts->begin(), parts->end(),
            [](const IndexSet& a, const IndexSet& b) {
              return *a.begin() < *b.begin();
            });
}

std::vector<IndexSet> ChoosePartition(
    const std::vector<IndexId>& indices,
    const std::vector<IndexSet>& current_partition, const DoiFn& doi,
    const PartitionOptions& options, Rng* rng) {
  WFIT_CHECK(rng != nullptr, "ChoosePartition requires an Rng");
  IndexSet d = IndexSet::FromVector(indices);
  WFIT_CHECK(2 * d.size() <= options.state_cnt || d.size() <= 1,
             "state_cnt cannot accommodate even singleton parts");

  // The search below evaluates pairwise cross losses O(|D|^2) times per
  // merge round, times rand_cnt rounds of rounds — querying the DoiFn
  // (a stats-window walk) each time dominated the WFIT hot path. Evaluate
  // doi exactly ONCE per pair into a dense |D|x|D| matrix and run the whole
  // search over dense member indices. Iteration orders are unchanged, so
  // every loss/weight sums in the same order and the RNG stream consumption
  // is identical: the chosen partitions match the direct implementation bit
  // for bit.
  const std::vector<IndexId>& ids = d.ids();
  const size_t n = ids.size();
  std::vector<double> doi_matrix(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double v = doi(ids[i], ids[j]);
      doi_matrix[i * n + j] = v;
      doi_matrix[j * n + i] = v;
    }
  }
  // Parts as sorted vectors of dense member indices (sorted => the same
  // ascending-id iteration order as IndexSet).
  using DensePart = std::vector<uint32_t>;
  auto cross_dense = [&](const DensePart& a, const DensePart& b) {
    double total = 0.0;
    for (uint32_t x : a) {
      const double* row = &doi_matrix[x * n];
      for (uint32_t y : b) total += row[y];
    }
    return total;
  };
  auto loss_dense = [&](const std::vector<DensePart>& parts) {
    double total = 0.0;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        total += cross_dense(parts[i], parts[j]);
      }
    }
    return total;
  };
  auto states_dense = [](const std::vector<DensePart>& parts) {
    size_t total = 0;
    for (const DensePart& p : parts) total += StatesOf(p.size());
    return total;
  };
  auto to_sets = [&](const std::vector<DensePart>& parts) {
    std::vector<IndexSet> out;
    out.reserve(parts.size());
    for (const DensePart& p : parts) {
      IndexSet set;
      for (uint32_t x : p) set.Add(ids[x]);
      out.push_back(std::move(set));
    }
    return out;
  };

  std::vector<DensePart> best;
  double best_loss = std::numeric_limits<double>::infinity();
  bool have_best = false;

  // Baseline: current partition restricted to D, plus singletons for the
  // new indices (Fig. 7, lines 2-7).
  {
    std::vector<DensePart> base;
    std::vector<bool> covered(n, false);
    for (const IndexSet& part : current_partition) {
      DensePart kept;
      for (size_t x = 0; x < n; ++x) {
        if (part.Contains(ids[x])) {
          kept.push_back(static_cast<uint32_t>(x));
          covered[x] = true;
        }
      }
      if (!kept.empty()) base.push_back(std::move(kept));
    }
    for (size_t x = 0; x < n; ++x) {
      if (!covered[x]) base.push_back(DensePart{static_cast<uint32_t>(x)});
    }
    bool feasible = states_dense(base) <= options.state_cnt;
    for (const DensePart& p : base) {
      feasible = feasible && p.size() <= options.max_part_size;
    }
    if (feasible) {
      best_loss = loss_dense(base);
      best = std::move(base);
      have_best = true;
    }
  }

  // Randomized merge searches (Fig. 7, lines 8-20). The pairwise cross
  // losses are cached between merge rounds: a merge only changes the
  // crosses involving the merged part, and those are recomputed from
  // scratch (not incrementally summed), so every cached value is exactly
  // the double a full recomputation would produce.
  struct Candidate {
    size_t i, j;
    double loss;
    double weight;
  };
  std::vector<Candidate> e, e1;
  std::vector<double> weights;
  std::vector<double> cross_cache;  // row-major over current part indices
  for (int iter = 0; iter < options.rand_cnt; ++iter) {
    std::vector<DensePart> parts;
    parts.reserve(n);
    for (size_t x = 0; x < n; ++x) {
      parts.push_back(DensePart{static_cast<uint32_t>(x)});
    }
    // All-singleton start: part crosses ARE the doi matrix.
    cross_cache = doi_matrix;
    size_t current_states = states_dense(parts);

    while (true) {
      // E: mergeable pairs with positive cross loss.
      e.clear();
      e1.clear();
      const size_t p = parts.size();
      for (size_t i = 0; i < p; ++i) {
        for (size_t j = i + 1; j < p; ++j) {
          double cross = cross_cache[i * p + j];
          if (cross <= 0.0) continue;
          size_t ni = parts[i].size(), nj = parts[j].size();
          if (ni + nj > options.max_part_size) continue;
          size_t merged_states = current_states - StatesOf(ni) -
                                 StatesOf(nj) + StatesOf(ni + nj);
          if (merged_states > options.state_cnt) continue;
          Candidate c{i, j, cross, 0.0};
          if (ni == 1 && nj == 1) {
            c.weight = cross;
            e1.push_back(c);
          } else {
            double denom = static_cast<double>(StatesOf(ni + nj) -
                                               StatesOf(ni) - StatesOf(nj));
            c.weight = cross / std::max(1.0, denom);
            e.push_back(c);
          }
        }
      }
      const std::vector<Candidate>& pool = !e1.empty() ? e1 : e;
      if (pool.empty()) break;
      weights.clear();
      weights.reserve(pool.size());
      for (const Candidate& c : pool) weights.push_back(c.weight);
      const Candidate& pick = pool[rng->PickWeighted(weights)];
      // Sorted merge keeps ascending iteration order (== IndexSet::Union).
      DensePart merged;
      merged.reserve(parts[pick.i].size() + parts[pick.j].size());
      std::merge(parts[pick.i].begin(), parts[pick.i].end(),
                 parts[pick.j].begin(), parts[pick.j].end(),
                 std::back_inserter(merged));
      current_states += StatesOf(merged.size()) -
                        StatesOf(parts[pick.i].size()) -
                        StatesOf(parts[pick.j].size());
      parts[pick.i] = std::move(merged);
      parts.erase(parts.begin() + static_cast<ptrdiff_t>(pick.j));
      // Shrink the cross cache: drop row/column pick.j, then refresh the
      // merged part's row and column.
      const size_t q = parts.size();  // == p - 1
      for (size_t i = 0, src_i = 0; i < q; ++i, ++src_i) {
        if (src_i == pick.j) ++src_i;
        for (size_t j = 0, src_j = 0; j < q; ++j, ++src_j) {
          if (src_j == pick.j) ++src_j;
          cross_cache[i * q + j] = cross_cache[src_i * p + src_j];
        }
      }
      cross_cache.resize(q * q);
      for (size_t k = 0; k < q; ++k) {
        if (k == pick.i) continue;
        // Argument order matches the (i < j) full recomputation exactly, so
        // the summation order — hence the double — is identical.
        double v = k < pick.i ? cross_dense(parts[k], parts[pick.i])
                              : cross_dense(parts[pick.i], parts[k]);
        cross_cache[pick.i * q + k] = v;
        cross_cache[k * q + pick.i] = v;
      }
    }

    double loss = loss_dense(parts);
    if (!have_best || loss < best_loss) {
      best_loss = loss;
      best = std::move(parts);
      have_best = true;
    }
  }

  WFIT_CHECK(have_best, "no feasible partition found");
  std::vector<IndexSet> out = to_sets(best);
  CanonicalizePartition(&out);
  return out;
}

}  // namespace wfit
