// Workload statistics maintained by chooseCands (Sec. 5.2.2):
//   idxStats[a]  — (n, βn) entries, βn = max benefit of index a for query n;
//   intStats[a,b] — (n, d) entries, d = doi_qn(a, b);
// both windowed to the histSize most recent positive entries. The derived
// "current benefit" benefit*_N and "current degree of interaction" doi*_N
// use the LRU-K-inspired maximum-over-suffix-averages formula.
#ifndef WFIT_CORE_STATS_H_
#define WFIT_CORE_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/index.h"

namespace wfit {

/// One windowed series of (position, value) entries with the paper's
/// current-value formula:
///   value*_N = max_ℓ (v1 + ... + vℓ) / (N − nℓ + 1),
/// evaluated newest to oldest. Recent entries get small denominators, so
/// recently useful indices score high (cf. LRU-K).
///
/// Storage is a ring buffer that grows lazily up to hist_size and then
/// overwrites the oldest slot in place — chooseCands records into hundreds
/// of windows per statement, and the previous deque churned an allocation
/// per chunk-boundary crossing on that path.
class RecencyWindow {
 public:
  explicit RecencyWindow(size_t hist_size) : hist_size_(hist_size) {}

  /// Appends an entry for workload position n (1-based, increasing).
  void Record(uint64_t n, double value);

  /// value*_N; zero when the window is empty.
  double CurrentValue(uint64_t now) const;

  bool empty() const { return buf_.empty(); }
  size_t size() const { return buf_.size(); }

  /// Oldest-first copy of the window contents (persist/ snapshots).
  std::vector<std::pair<uint64_t, double>> Entries() const;
  /// Replaces the window with `oldest_first` entries (positions
  /// non-decreasing), trimming to hist_size as Record would.
  void RestoreEntries(const std::vector<std::pair<uint64_t, double>>& oldest_first);

 private:
  size_t hist_size_;
  /// Ring: grows to hist_size_, then wraps. newest_ indexes the most
  /// recent entry; the oldest is the next slot once the ring is full.
  std::vector<std::pair<uint64_t, double>> buf_;
  size_t newest_ = 0;
};

/// idxStats: per-index benefit windows.
class BenefitStats {
 public:
  explicit BenefitStats(size_t hist_size) : hist_size_(hist_size) {}

  /// Records βn for index a at position n; ignored unless βn > 0
  /// (the paper stores positive-benefit entries only).
  void Record(IndexId a, uint64_t n, double beta);

  /// benefit*_N(a).
  double CurrentBenefit(IndexId a, uint64_t now) const;

  /// Every non-empty window keyed by index id, sorted by id, entries
  /// oldest first (persist/ snapshots; map iteration order is laundered
  /// through the sort so exports are deterministic).
  std::vector<std::pair<IndexId, std::vector<std::pair<uint64_t, double>>>>
  Export() const;
  /// Re-creates one exported window (replaces any existing one for `a`).
  void RestoreWindow(IndexId a,
                     const std::vector<std::pair<uint64_t, double>>& entries);

 private:
  size_t hist_size_;
  std::unordered_map<IndexId, RecencyWindow> windows_;
};

/// intStats: per-pair doi windows. Pairs are unordered.
class InteractionStats {
 public:
  explicit InteractionStats(size_t hist_size) : hist_size_(hist_size) {}

  /// Records doi_qn(a, b) = d at position n; ignored unless d > 0.
  void Record(IndexId a, IndexId b, uint64_t n, double d);

  /// doi*_N(a, b).
  double CurrentDoi(IndexId a, IndexId b, uint64_t now) const;

  /// True if any entry was ever recorded for the pair.
  bool HasInteraction(IndexId a, IndexId b) const;

  /// Every window keyed by the packed pair key (lo << 32 | hi), sorted by
  /// key, entries oldest first (persist/ snapshots).
  std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
  Export() const;
  /// Re-creates one exported window under its packed pair key.
  void RestoreWindow(uint64_t key,
                     const std::vector<std::pair<uint64_t, double>>& entries);

 private:
  static uint64_t Key(IndexId a, IndexId b);
  size_t hist_size_;
  std::unordered_map<uint64_t, RecencyWindow> windows_;
};

}  // namespace wfit

#endif  // WFIT_CORE_STATS_H_
