#include "core/wfit.h"

#include <algorithm>
#include <string>

#include "core/wfa_plus.h"
#include "obs/trace.h"

namespace wfit {

Wfit::Wfit(IndexPool* pool, const WhatIfOptimizer* optimizer,
           const IndexSet& initial_materialized, const WfitOptions& options)
    : pool_(pool),
      optimizer_(optimizer),
      options_(options),
      initial_materialized_(initial_materialized) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "Wfit requires pool and optimizer");
  memo_ = std::make_unique<CachingWhatIfOptimizer>(optimizer,
                                                   options.cross_cache);
  // The selector probes through the memo too: its statement-wide IBG and
  // the per-part IBGs of the same statement share configuration probes.
  selector_ = std::make_unique<CandidateSelector>(
      pool, memo_.get(), options.candidates, options.seed);
  // Fig. 4 initialization: C = S0, one singleton part per initial index.
  for (IndexId a : initial_materialized) {
    partition_.push_back(IndexSet{a});
    instances_.push_back(
        WfaInstance({a}, optimizer->cost_model(), /*initial_config=*/1));
    candidate_set_.Add(a);
    selector_->AddToUniverse(a);
  }
}

IndexSet Wfit::Recommendation() const {
  if (!rec_valid_) {
    IndexSet out;
    for (const WfaInstance& instance : instances_) {
      out = out.Union(instance.RecommendationSet());
    }
    cached_rec_ = std::move(out);
    rec_valid_ = true;
  }
  return cached_rec_;
}

size_t Wfit::TotalStates() const {
  size_t total = 0;
  for (const WfaInstance& instance : instances_) {
    total += instance.num_states();
  }
  return total;
}

void Wfit::Repartition(const std::vector<IndexSet>& new_partition) {
  // The new partition must cover what the DBA has materialized (here: the
  // current recommendation), or WFIT's state would contradict the physical
  // configuration (Sec. 5.2.1).
  IndexSet curr_rec = Recommendation();
  IndexSet new_universe;
  for (const IndexSet& part : new_partition) {
    new_universe = new_universe.Union(part);
  }
  WFIT_CHECK(curr_rec.IsSubsetOf(new_universe),
             "new partition does not cover materialized indices");

  const CostModel& model = optimizer_->cost_model();
  std::vector<WfaInstance> new_instances;
  new_instances.reserve(new_partition.size());
  for (const IndexSet& dm : new_partition) {
    std::vector<IndexId> members(dm.begin(), dm.end());
    const size_t n = size_t{1} << members.size();
    std::vector<double> x(n, 0.0);
    // Fig. 5 line 6: x[X] = Σk w(k)[Ck ∩ X].
    for (Mask mask = 0; mask < n; ++mask) {
      IndexSet x_set;
      Mask rest = mask;
      while (rest != 0) {
        int bit = LowestBit(rest);
        rest &= rest - 1;
        x_set.Add(members[static_cast<size_t>(bit)]);
      }
      double total = 0.0;
      for (const WfaInstance& old_instance : instances_) {
        total += old_instance.work_value(old_instance.ToMask(x_set));
      }
      // Fig. 5 line 7: charge materialization for indices new to the
      // candidate set: δ(S0 ∩ Dm − C, X − C).
      IndexSet from = initial_materialized_.Intersect(dm).Minus(candidate_set_);
      IndexSet to = x_set.Minus(candidate_set_);
      total += model.TransitionCost(from, to);
      x[mask] = total;
    }
    // Fig. 5 line 8: newRec = Dm ∩ currRec.
    Mask rec_mask = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (curr_rec.Contains(members[i])) rec_mask |= Mask{1} << i;
    }
    new_instances.push_back(
        WfaInstance(std::move(members), model, std::move(x), rec_mask));
  }

  instances_ = std::move(new_instances);
  partition_ = new_partition;
  candidate_set_ = new_universe;
  ++repartitions_;
  rec_valid_ = false;
}

void Wfit::AnalyzeQuery(const Statement& q) {
  // Scope the what-if memo to this statement: chooseCands' statement-wide
  // IBG and the per-part IBGs below dedupe identical configuration probes.
  memo_->BeginStatement(&q);

  // Fig. 6: chooseCands; M = what the DBA has materialized (the adopted
  // recommendation in this library's harness convention).
  CandidateAnalysis analysis = [&] {
    obs::SpanGuard span("choose_cands");
    return selector_->ChooseCands(q, Recommendation(), partition_);
  }();

  std::vector<IndexSet> new_partition = analysis.partition;
  CanonicalizePartition(&new_partition);
  std::vector<IndexSet> current = partition_;
  CanonicalizePartition(&current);
  if (new_partition != current) {
    obs::SpanGuard span("repartition");
    if (span.trace_id() != 0) {
      span.SetDetail(std::to_string(new_partition.size()) + " parts");
    }
    Repartition(new_partition);
  }

  // WFA+ step: one exact IBG per statement-relevant part (the selector's
  // statement-wide IBG serves the statistics only; per-part graphs keep
  // every monitored candidate's cost signal exact). Per-part work fans out
  // across the analysis pool when one is attached.
  {
    obs::SpanGuard span("wfa.update");
    if (span.trace_id() != 0) {
      span.SetDetail(std::to_string(instances_.size()) + " parts");
    }
    AnalyzePartitioned(q, *pool_, *memo_,
                       options_.candidates.ibg_node_budget, &instances_,
                       analysis_pool_);
  }
  rec_valid_ = false;
}

WfitState Wfit::ExportState() const {
  WfitState state;
  state.instance_members.reserve(instances_.size());
  state.work_values.reserve(instances_.size());
  state.current_recs.reserve(instances_.size());
  for (const WfaInstance& instance : instances_) {
    state.instance_members.push_back(instance.members());
    state.work_values.push_back(instance.work_values());
    state.current_recs.push_back(instance.recommendation());
  }
  state.candidate_set = candidate_set_;
  state.initial_materialized = initial_materialized_;
  state.repartitions = repartitions_;
  state.feedback_events = feedback_events_;
  state.selector = selector_->ExportState();
  return state;
}

Status Wfit::RestoreState(const WfitState& state) {
  const size_t parts = state.instance_members.size();
  if (state.work_values.size() != parts ||
      state.current_recs.size() != parts) {
    return Status::InvalidArgument("wfit state: ragged per-part vectors");
  }
  IndexSet member_union;
  for (size_t i = 0; i < parts; ++i) {
    const std::vector<IndexId>& members = state.instance_members[i];
    if (members.empty() || members.size() > 20) {
      return Status::InvalidArgument("wfit state: bad part size");
    }
    const size_t n = size_t{1} << members.size();
    if (state.work_values[i].size() != n || state.current_recs[i] >= n) {
      return Status::InvalidArgument("wfit state: work function shape");
    }
    for (IndexId id : members) {
      if (id >= pool_->size()) {
        return Status::InvalidArgument("wfit state: member outside pool");
      }
      if (!member_union.Add(id)) {
        return Status::InvalidArgument("wfit state: parts not disjoint");
      }
    }
  }
  if (member_union != state.candidate_set) {
    return Status::InvalidArgument(
        "wfit state: candidate set does not match the partition");
  }
  WFIT_RETURN_IF_ERROR(selector_->RestoreState(state.selector));

  const CostModel& model = optimizer_->cost_model();
  std::vector<IndexSet> partition;
  std::vector<WfaInstance> instances;
  partition.reserve(parts);
  instances.reserve(parts);
  for (size_t i = 0; i < parts; ++i) {
    partition.push_back(IndexSet::FromVector(state.instance_members[i]));
    instances.push_back(WfaInstance(state.instance_members[i], model,
                                    state.work_values[i],
                                    state.current_recs[i]));
  }
  partition_ = std::move(partition);
  instances_ = std::move(instances);
  candidate_set_ = state.candidate_set;
  initial_materialized_ = state.initial_materialized;
  repartitions_ = state.repartitions;
  feedback_events_ = state.feedback_events;
  rec_valid_ = false;
  return Status::Ok();
}

void Wfit::Feedback(const IndexSet& f_plus, const IndexSet& f_minus) {
  // Seed the universe with every voted index: even when a vote cannot be
  // honored structurally, the index becomes a candidate for the future.
  for (IndexId a : f_plus) selector_->AddToUniverse(a);
  for (IndexId a : f_minus) selector_->AddToUniverse(a);

  // Positive votes on unmonitored indices: open a singleton part so the
  // consistency constraint F+ ⊆ S can hold.
  for (IndexId a : f_plus) {
    if (candidate_set_.Contains(a)) continue;
    partition_.push_back(IndexSet{a});
    instances_.push_back(
        WfaInstance({a}, optimizer_->cost_model(), /*initial_config=*/0));
    candidate_set_.Add(a);
  }

  for (WfaInstance& instance : instances_) {
    instance.ApplyFeedback(instance.ToMask(f_plus),
                           instance.ToMask(f_minus));
  }
  ++feedback_events_;
  rec_valid_ = false;
}

}  // namespace wfit
