#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/fault.h"

namespace wfit::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Internal(what + ": " + std::strerror(err));
}

/// getaddrinfo for a numeric-or-named host; caller frees with
/// freeaddrinfo.
StatusOr<addrinfo*> Resolve(const std::string& host, uint16_t port,
                            bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         service.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(rc));
  }
  return result;
}

}  // namespace

StatusOr<int> ListenTcp(const std::string& host, uint16_t port,
                        int backlog) {
  auto resolved = Resolve(host, port, /*passive=*/true);
  if (!resolved.ok()) return resolved.status();
  addrinfo* list = *resolved;
  Status last = Status::Internal("listen: no usable address");
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = ErrnoStatus("bind/listen " + host + ":" + std::to_string(port),
                         errno);
      CloseFd(fd);
      continue;
    }
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  return last;
}

namespace {

/// Bounded connect: non-blocking connect + poll, then back to blocking.
/// Keeps a black-holed or heavily partitioned peer from pinning the
/// caller (the membership prober in particular) on the kernel's
/// multi-second SYN timeout.
Status ConnectWithTimeout(int fd, const addrinfo* ai, int timeout_ms) {
  Status st = SetNonBlocking(fd);
  if (!st.ok()) return st;
  int rc;
  do {
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) return ErrnoStatus("connect", errno);
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      return Status::Internal("connect timed out after " +
                              std::to_string(timeout_ms) + "ms");
    }
    if (rc < 0) return ErrnoStatus("poll(connect)", errno);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) return ErrnoStatus("connect", err);
  }
  // Restore blocking mode for the caller's send/recv loops.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port,
                         int timeout_ms) {
  if (FaultInjector* fi = FaultInjector::Get()) {
    Status st = fi->OnConnect(host, port);
    if (!st.ok()) return st;
  }
  auto resolved = Resolve(host, port, /*passive=*/false);
  if (!resolved.ok()) return resolved.status();
  addrinfo* list = *resolved;
  Status last = Status::Internal("connect: no usable address");
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    if (timeout_ms >= 0) {
      Status st = ConnectWithTimeout(fd, ai, timeout_ms);
      if (!st.ok()) {
        last = Status::Internal(st.message() + " (" + host + ":" +
                                std::to_string(port) + ")");
        CloseFd(fd);
        continue;
      }
    } else {
      int rc;
      do {
        rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) {
        last = ErrnoStatus("connect " + host + ":" + std::to_string(port),
                           errno);
        CloseFd(fd);
        continue;
      }
    }
    // RPCs are request/response; Nagle only adds latency here.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(list);
    if (FaultInjector* fi = FaultInjector::Get()) {
      fi->RegisterFd(fd, host, port);
    }
    return fd;
  }
  ::freeaddrinfo(list);
  return last;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return Status::Internal("getsockname: unexpected address family");
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

namespace {

Status WriteAllRaw(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::Ok();
}

}  // namespace

Status WriteAll(int fd, std::string_view data) {
  FaultInjector* fi = FaultInjector::Get();
  if (fi == nullptr) return WriteAllRaw(fd, data);
  const FaultInjector::SendPlan plan = fi->PlanSend(fd, data.size());
  if (plan.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
  }
  switch (plan.action) {
    case FaultInjector::SendAction::kPass:
      return WriteAllRaw(fd, data);
    case FaultInjector::SendAction::kDrop:
      return Status::Internal("fault: send dropped");
    case FaultInjector::SendAction::kTear:
      // A strict prefix reaches the peer (it will see a truncated frame
      // or a poisoned stream), then the call fails like a torn write.
      (void)WriteAllRaw(fd, data.substr(0, plan.tear_bytes));
      return Status::Internal("fault: torn write (" +
                              std::to_string(plan.tear_bytes) + "/" +
                              std::to_string(data.size()) + " bytes)");
    case FaultInjector::SendAction::kDup: {
      // The peer receives the payload twice — duplicate delivery — and
      // the caller still sees a failure, so it reconnects and retries
      // like any at-least-once client. Exactly-once submission upstream
      // must absorb the duplicate.
      Status st = WriteAllRaw(fd, data);
      if (st.ok()) st = WriteAllRaw(fd, data);
      if (!st.ok()) return st;
      return Status::Internal("fault: send duplicated, connection dropped");
    }
  }
  return WriteAllRaw(fd, data);
}

ssize_t RecvSome(int fd, char* buf, size_t cap) {
  if (FaultInjector* fi = FaultInjector::Get()) {
    int delay_ms = fi->PlanRecvDelayMs(fd);
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
  return ::recv(fd, buf, cap, 0);
}

void CloseFd(int fd) {
  if (fd < 0) return;
  if (FaultInjector* fi = FaultInjector::Get()) fi->ForgetFd(fd);
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace wfit::net
