#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wfit::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Internal(what + ": " + std::strerror(err));
}

/// getaddrinfo for a numeric-or-named host; caller frees with
/// freeaddrinfo.
StatusOr<addrinfo*> Resolve(const std::string& host, uint16_t port,
                            bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         service.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " +
                                   gai_strerror(rc));
  }
  return result;
}

}  // namespace

StatusOr<int> ListenTcp(const std::string& host, uint16_t port,
                        int backlog) {
  auto resolved = Resolve(host, port, /*passive=*/true);
  if (!resolved.ok()) return resolved.status();
  addrinfo* list = *resolved;
  Status last = Status::Internal("listen: no usable address");
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = ErrnoStatus("bind/listen " + host + ":" + std::to_string(port),
                         errno);
      CloseFd(fd);
      continue;
    }
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  return last;
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port) {
  auto resolved = Resolve(host, port, /*passive=*/false);
  if (!resolved.ok()) return resolved.status();
  addrinfo* list = *resolved;
  Status last = Status::Internal("connect: no usable address");
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      last = ErrnoStatus("connect " + host + ":" + std::to_string(port),
                         errno);
      CloseFd(fd);
      continue;
    }
    // RPCs are request/response; Nagle only adds latency here.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(list);
    return fd;
  }
  ::freeaddrinfo(list);
  return last;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return Status::Internal("getsockname: unexpected address family");
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send", errno);
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace wfit::net
