// Length-prefixed, CRC-guarded framing for the wire protocol — the same
// `[u32 len][u32 crc32(payload)][payload]` layout the write-ahead journal
// uses on disk (persist/journal), reused on the socket so one corruption
// story covers both. The reader is incremental: feed it whatever the
// kernel hands you and pull complete frames as they materialize; torn
// frames simply wait for more bytes, while structural damage (an absurd
// length prefix, a CRC mismatch) is a hard protocol error that poisons
// the stream.
#ifndef WFIT_NET_FRAME_H_
#define WFIT_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wfit::net {

/// Frames above this are refused on both sides: a checkpoint pack for a
/// large tenant is tens of MiB, so 64 MiB leaves headroom while still
/// catching a garbage length prefix (which is ~4 GiB half the time).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Bytes of framing overhead per frame (length + CRC words).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Wraps `payload` in a frame ready to write to a socket.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame extractor over a TCP byte stream.
///
///   reader.Feed(buf, n);                 // whatever recv() returned
///   std::string payload;
///   while (true) {
///     auto next = reader.Next(&payload);
///     if (!next.ok()) { /* protocol error: close the connection */ }
///     if (!*next) break;                 // torn frame — need more bytes
///     Handle(payload);
///   }
///
/// After any non-OK Next() the stream is poisoned and every further call
/// returns the same error: framing has no resync points, so the only safe
/// recovery is closing the connection.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(std::string_view data) { buf_.append(data); }

  /// True and fills `*payload` when a complete frame was extracted; false
  /// when more bytes are needed; non-OK on protocol damage.
  StatusOr<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed by a complete frame. A nonzero
  /// value at connection close means the peer died mid-frame.
  size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;   // consumed prefix of buf_
  bool poisoned_ = false;
  Status poison_;
};

}  // namespace wfit::net

#endif  // WFIT_NET_FRAME_H_
