#include "net/wire.h"

#include "persist/codec.h"
#include "persist/journal.h"

namespace wfit::net {

using persist::Decoder;
using persist::Encoder;

namespace {

Status CheckVersionAndType(Decoder* d, uint8_t* version, uint8_t* type_byte) {
  WFIT_RETURN_IF_ERROR(d->GetU8(version));
  if (*version < kMinWireVersion || *version > kWireVersion) {
    return Status::InvalidArgument(
        "wire: protocol version " + std::to_string(*version) +
        " (this build speaks " + std::to_string(kMinWireVersion) + ".." +
        std::to_string(kWireVersion) + ")");
  }
  return d->GetU8(type_byte);
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kSubmit:
      return "submit";
    case MsgType::kSubmitAt:
      return "submit_at";
    case MsgType::kFeedback:
      return "feedback";
    case MsgType::kFeedbackAfter:
      return "feedback_after";
    case MsgType::kGetRecommendation:
      return "get_recommendation";
    case MsgType::kGetAnalyzed:
      return "get_analyzed";
    case MsgType::kScrapeMetrics:
      return "scrape_metrics";
    case MsgType::kListTenants:
      return "list_tenants";
    case MsgType::kGetHistory:
      return "get_history";
    case MsgType::kGetConfig:
      return "get_config";
    case MsgType::kMigrate:
      return "migrate";
    case MsgType::kMigrateIn:
      return "migrate_in";
    case MsgType::kDrain:
      return "drain";
    case MsgType::kSetConfig:
      return "set_config";
    case MsgType::kShutdownNode:
      return "shutdown_node";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kDecommission:
      return "decommission";
    case MsgType::kDumpTrace:
      return "dump_trace";
    case MsgType::kGetHealth:
      return "get_health";
  }
  return "unknown";
}

std::string EncodeRequest(const Request& req) {
  return EncodeRequest(req, req.trace_id, req.parent_span);
}

std::string EncodeRequest(const Request& req, uint64_t trace_id,
                          uint64_t parent_span) {
  Encoder e;
  e.PutU8(kWireVersion);
  e.PutU8(static_cast<uint8_t>(req.type));
  e.PutString(req.tenant);
  e.PutU64(req.seq);
  e.PutU8(req.has_statement ? 1 : 0);
  if (req.has_statement) persist::EncodeStatement(req.statement, &e);
  e.PutIndexSet(req.f_plus);
  e.PutIndexSet(req.f_minus);
  e.PutString(req.target_node);
  e.PutString(req.pack);
  e.PutU32(static_cast<uint32_t>(req.votes.size()));
  for (const VoteWire& v : req.votes) {
    e.PutU64(v.after_seq);
    e.PutIndexSet(v.plus);
    e.PutIndexSet(v.minus);
  }
  e.PutString(req.config_blob);
  e.PutString(req.node_id);
  // v3 trace-context extension: appended last so a v2 decoder's field
  // walk never sees it.
  e.PutU64(trace_id);
  e.PutU64(parent_span);
  return e.Release();
}

Status DecodeRequest(std::string_view payload, Request* out) {
  Decoder d(payload);
  uint8_t version = 0;
  uint8_t type_byte = 0;
  WFIT_RETURN_IF_ERROR(CheckVersionAndType(&d, &version, &type_byte));
  if (type_byte < static_cast<uint8_t>(MsgType::kPing) ||
      type_byte > static_cast<uint8_t>(MsgType::kGetHealth)) {
    return Status::InvalidArgument("wire: unknown request type " +
                                   std::to_string(type_byte));
  }
  out->type = static_cast<MsgType>(type_byte);
  WFIT_RETURN_IF_ERROR(d.GetString(&out->tenant));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->seq));
  uint8_t has_stmt = 0;
  WFIT_RETURN_IF_ERROR(d.GetU8(&has_stmt));
  out->has_statement = has_stmt != 0;
  if (out->has_statement) {
    WFIT_RETURN_IF_ERROR(persist::DecodeStatement(&d, &out->statement));
  }
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->f_plus));
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->f_minus));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->target_node));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->pack));
  uint32_t vote_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&vote_count));
  out->votes.clear();
  for (uint32_t i = 0; i < vote_count; ++i) {
    VoteWire v;
    WFIT_RETURN_IF_ERROR(d.GetU64(&v.after_seq));
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&v.plus));
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&v.minus));
    out->votes.push_back(std::move(v));
  }
  WFIT_RETURN_IF_ERROR(d.GetString(&out->config_blob));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->node_id));
  if (version >= 3) {
    WFIT_RETURN_IF_ERROR(d.GetU64(&out->trace_id));
    WFIT_RETURN_IF_ERROR(d.GetU64(&out->parent_span));
  } else {
    // Version-skew fallback: a v2 peer carries no trace context.
    out->trace_id = 0;
    out->parent_span = 0;
  }
  if (!d.done()) {
    return Status::InvalidArgument("wire: trailing bytes after request");
  }
  return Status::Ok();
}

std::string EncodeResponse(const Response& resp) {
  Encoder e;
  e.PutU8(kWireVersion);
  e.PutU8(static_cast<uint8_t>(resp.kind));
  e.PutU8(static_cast<uint8_t>(resp.code));
  e.PutString(resp.message);
  e.PutString(resp.owner_id);
  e.PutString(resp.owner_host);
  e.PutU32(resp.owner_port);
  e.PutU64(resp.config_version);
  e.PutIndexSet(resp.configuration);
  e.PutU64(resp.analyzed);
  e.PutU64(resp.version);
  e.PutString(resp.text);
  e.PutU32(static_cast<uint32_t>(resp.tenants.size()));
  for (const std::string& t : resp.tenants) e.PutString(t);
  e.PutU32(static_cast<uint32_t>(resp.history.size()));
  for (const IndexSet& s : resp.history) e.PutIndexSet(s);
  e.PutU64(resp.history_start);
  e.PutU64(resp.count);
  return e.Release();
}

Status DecodeResponse(std::string_view payload, Response* out) {
  Decoder d(payload);
  uint8_t version = 0;  // v2 and v3 responses share one layout
  uint8_t kind_byte = 0;
  WFIT_RETURN_IF_ERROR(CheckVersionAndType(&d, &version, &kind_byte));
  if (kind_byte > static_cast<uint8_t>(RespKind::kBusy)) {
    return Status::InvalidArgument("wire: unknown response kind " +
                                   std::to_string(kind_byte));
  }
  out->kind = static_cast<RespKind>(kind_byte);
  uint8_t code_byte = 0;
  WFIT_RETURN_IF_ERROR(d.GetU8(&code_byte));
  if (code_byte > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(code_byte));
  }
  out->code = static_cast<StatusCode>(code_byte);
  WFIT_RETURN_IF_ERROR(d.GetString(&out->message));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->owner_id));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->owner_host));
  WFIT_RETURN_IF_ERROR(d.GetU32(&out->owner_port));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->config_version));
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->configuration));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->analyzed));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->version));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->text));
  uint32_t tenant_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&tenant_count));
  out->tenants.clear();
  for (uint32_t i = 0; i < tenant_count; ++i) {
    std::string t;
    WFIT_RETURN_IF_ERROR(d.GetString(&t));
    out->tenants.push_back(std::move(t));
  }
  uint32_t history_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&history_count));
  out->history.clear();
  for (uint32_t i = 0; i < history_count; ++i) {
    IndexSet s;
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&s));
    out->history.push_back(std::move(s));
  }
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->history_start));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->count));
  if (!d.done()) {
    return Status::InvalidArgument("wire: trailing bytes after response");
  }
  return Status::Ok();
}

Response OkResp() { return Response{}; }

Response ErrResp(const Status& status) {
  Response r;
  r.kind = RespKind::kError;
  r.code = status.code();
  r.message = status.message();
  return r;
}

}  // namespace wfit::net
