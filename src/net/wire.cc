#include "net/wire.h"

#include "persist/codec.h"
#include "persist/journal.h"

namespace wfit::net {

using persist::Decoder;
using persist::Encoder;

namespace {

Status CheckVersionAndType(Decoder* d, uint8_t* type_byte) {
  uint8_t version = 0;
  WFIT_RETURN_IF_ERROR(d->GetU8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        "wire: protocol version " + std::to_string(version) +
        " (this build speaks " + std::to_string(kWireVersion) + ")");
  }
  return d->GetU8(type_byte);
}

}  // namespace

std::string EncodeRequest(const Request& req) {
  Encoder e;
  e.PutU8(kWireVersion);
  e.PutU8(static_cast<uint8_t>(req.type));
  e.PutString(req.tenant);
  e.PutU64(req.seq);
  e.PutU8(req.has_statement ? 1 : 0);
  if (req.has_statement) persist::EncodeStatement(req.statement, &e);
  e.PutIndexSet(req.f_plus);
  e.PutIndexSet(req.f_minus);
  e.PutString(req.target_node);
  e.PutString(req.pack);
  e.PutU32(static_cast<uint32_t>(req.votes.size()));
  for (const VoteWire& v : req.votes) {
    e.PutU64(v.after_seq);
    e.PutIndexSet(v.plus);
    e.PutIndexSet(v.minus);
  }
  e.PutString(req.config_blob);
  e.PutString(req.node_id);
  return e.Release();
}

Status DecodeRequest(std::string_view payload, Request* out) {
  Decoder d(payload);
  uint8_t type_byte = 0;
  WFIT_RETURN_IF_ERROR(CheckVersionAndType(&d, &type_byte));
  if (type_byte < static_cast<uint8_t>(MsgType::kPing) ||
      type_byte > static_cast<uint8_t>(MsgType::kDecommission)) {
    return Status::InvalidArgument("wire: unknown request type " +
                                   std::to_string(type_byte));
  }
  out->type = static_cast<MsgType>(type_byte);
  WFIT_RETURN_IF_ERROR(d.GetString(&out->tenant));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->seq));
  uint8_t has_stmt = 0;
  WFIT_RETURN_IF_ERROR(d.GetU8(&has_stmt));
  out->has_statement = has_stmt != 0;
  if (out->has_statement) {
    WFIT_RETURN_IF_ERROR(persist::DecodeStatement(&d, &out->statement));
  }
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->f_plus));
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->f_minus));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->target_node));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->pack));
  uint32_t vote_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&vote_count));
  out->votes.clear();
  for (uint32_t i = 0; i < vote_count; ++i) {
    VoteWire v;
    WFIT_RETURN_IF_ERROR(d.GetU64(&v.after_seq));
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&v.plus));
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&v.minus));
    out->votes.push_back(std::move(v));
  }
  WFIT_RETURN_IF_ERROR(d.GetString(&out->config_blob));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->node_id));
  if (!d.done()) {
    return Status::InvalidArgument("wire: trailing bytes after request");
  }
  return Status::Ok();
}

std::string EncodeResponse(const Response& resp) {
  Encoder e;
  e.PutU8(kWireVersion);
  e.PutU8(static_cast<uint8_t>(resp.kind));
  e.PutU8(static_cast<uint8_t>(resp.code));
  e.PutString(resp.message);
  e.PutString(resp.owner_id);
  e.PutString(resp.owner_host);
  e.PutU32(resp.owner_port);
  e.PutU64(resp.config_version);
  e.PutIndexSet(resp.configuration);
  e.PutU64(resp.analyzed);
  e.PutU64(resp.version);
  e.PutString(resp.text);
  e.PutU32(static_cast<uint32_t>(resp.tenants.size()));
  for (const std::string& t : resp.tenants) e.PutString(t);
  e.PutU32(static_cast<uint32_t>(resp.history.size()));
  for (const IndexSet& s : resp.history) e.PutIndexSet(s);
  e.PutU64(resp.history_start);
  e.PutU64(resp.count);
  return e.Release();
}

Status DecodeResponse(std::string_view payload, Response* out) {
  Decoder d(payload);
  uint8_t kind_byte = 0;
  WFIT_RETURN_IF_ERROR(CheckVersionAndType(&d, &kind_byte));
  if (kind_byte > static_cast<uint8_t>(RespKind::kBusy)) {
    return Status::InvalidArgument("wire: unknown response kind " +
                                   std::to_string(kind_byte));
  }
  out->kind = static_cast<RespKind>(kind_byte);
  uint8_t code_byte = 0;
  WFIT_RETURN_IF_ERROR(d.GetU8(&code_byte));
  if (code_byte > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(code_byte));
  }
  out->code = static_cast<StatusCode>(code_byte);
  WFIT_RETURN_IF_ERROR(d.GetString(&out->message));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->owner_id));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->owner_host));
  WFIT_RETURN_IF_ERROR(d.GetU32(&out->owner_port));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->config_version));
  WFIT_RETURN_IF_ERROR(d.GetIndexSet(&out->configuration));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->analyzed));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->version));
  WFIT_RETURN_IF_ERROR(d.GetString(&out->text));
  uint32_t tenant_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&tenant_count));
  out->tenants.clear();
  for (uint32_t i = 0; i < tenant_count; ++i) {
    std::string t;
    WFIT_RETURN_IF_ERROR(d.GetString(&t));
    out->tenants.push_back(std::move(t));
  }
  uint32_t history_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&history_count));
  out->history.clear();
  for (uint32_t i = 0; i < history_count; ++i) {
    IndexSet s;
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&s));
    out->history.push_back(std::move(s));
  }
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->history_start));
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->count));
  if (!d.done()) {
    return Status::InvalidArgument("wire: trailing bytes after response");
  }
  return Status::Ok();
}

Response OkResp() { return Response{}; }

Response ErrResp(const Status& status) {
  Response r;
  r.kind = RespKind::kError;
  r.code = status.code();
  r.message = status.message();
  return r;
}

}  // namespace wfit::net
