// Blocking RPC client for the framed wire protocol: one request frame
// out, one response frame back, with socket timeouts so a hung peer
// turns into a clean Status instead of a stuck thread. One Client is one
// TCP connection; it is NOT thread-safe — use one per thread (the
// cluster client in cluster/ wraps per-node connections).
#ifndef WFIT_NET_CLIENT_H_
#define WFIT_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "net/wire.h"

namespace wfit::net {

class Client {
 public:
  struct Options {
    /// Send/receive timeout per syscall. Generous because an admin RPC
    /// (migration handoff) packs and ships a whole checkpoint tree.
    int timeout_ms = 30000;
    uint32_t max_frame_bytes = kMaxFrameBytes;
  };

  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port, Options options);
  Status Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, Options());
  }
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One round trip. Any transport or protocol failure closes the
  /// connection (a half-consumed stream cannot be reused) and returns a
  /// descriptive Status; the caller may Reconnect and retry.
  StatusOr<Response> Call(const Request& request);

 private:
  StatusOr<Response> CallInner(const Request& request);

  int fd_ = -1;
  Options options_;
  FrameReader reader_;
};

}  // namespace wfit::net

#endif  // WFIT_NET_CLIENT_H_
