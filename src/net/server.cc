#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/socket.h"
#include "obs/trace.h"

namespace wfit::net {

namespace {

// Installs the request's wire trace context around the handler and wraps
// it in a server-side span, so the client's "cli.<type>" span becomes the
// parent of "srv.<type>" even across processes.
Response RunTraced(const Server::Handler& handler, const Request& req) {
  obs::ScopedTraceContext ctx(
      obs::TraceContext{req.trace_id, req.parent_span});
  char span_name[24];
  std::snprintf(span_name, sizeof(span_name), "srv.%s",
                MsgTypeName(req.type));
  obs::SpanGuard span(span_name);
  if (!req.tenant.empty()) span.SetDetail(req.tenant);
  return handler(req);
}

}  // namespace

Server::Server(Handler fast, Handler slow, SlowPredicate is_slow,
               ServerOptions options)
    : fast_(std::move(fast)),
      slow_(std::move(slow)),
      is_slow_(std::move(is_slow)),
      options_(std::move(options)) {
  WFIT_CHECK(fast_ != nullptr, "Server requires a fast handler");
  if (slow_ == nullptr) slow_ = fast_;
  if (is_slow_ == nullptr) is_slow_ = [](MsgType) { return false; };
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  WFIT_CHECK(!started_, "Server::Start called twice");
  auto listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;
  auto port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  WFIT_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal(std::string("epoll/eventfd: ") +
                            std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_ = true;
  loop_thread_ = std::thread([this] { EventLoop(); });
  const size_t workers = std::max<size_t>(options_.admin_workers, 1);
  for (size_t i = 0; i < workers; ++i) {
    admin_threads_.emplace_back([this] { AdminLoop(); });
  }
  return Status::Ok();
}

void Server::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  WakeLoop();
  loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    admin_stop_ = true;
  }
  admin_cv_.notify_all();
  for (std::thread& t : admin_threads_) t.join();
  admin_threads_.clear();
  // Best-effort final flush so a response produced during shutdown (e.g.
  // the reply to kShutdownNode itself) still reaches the peer.
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->dead && !conn->out.empty()) {
      (void)WriteAll(fd, conn->out);
    }
    conn->dead = true;
    CloseFd(fd);
  }
  conns_.clear();
  CloseFd(listen_fd_);
  CloseFd(epoll_fd_);
  CloseFd(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void Server::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;  // eventfd counter saturation is fine; the loop wakes anyway
}

void Server::EventLoop() {
  std::vector<epoll_event> events(64);
  while (!stop_.load()) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), /*timeout=*/250);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;  // the sweep below picks up whatever changed
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        std::lock_guard<std::mutex> lock(it->second->mu);
        it->second->dead = true;
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(it->second);
      // Writes happen in the sweep; EPOLLOUT just wakes us for it.
    }
    SweepConns();
  }
}

void Server::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseFd(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& conn) {
  // Pull every available byte first (edge-tolerant under level-triggered
  // epoll; one pass per wakeup).
  char buf[64 * 1024];
  bool peer_closed = false;
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->reader.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_closed = true;  // hard socket error
    break;
  }
  // Extract and route complete frames, one at a time: dispatching can
  // flip the connection to busy (a slow RPC), which reroutes the REST of
  // the pipelined frames to the backlog for ordered handling.
  while (true) {
    std::string payload;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead || conn->closing) break;
      auto next = conn->reader.Next(&payload);
      if (!next.ok()) {
        // Structural damage (bad length prefix / CRC). Tell the peer why,
        // then flush-and-close — framing has no resync point.
        Response err = ErrResp(next.status());
        conn->out += EncodeFrame(EncodeResponse(err));
        conn->closing = true;
        break;
      }
      if (!*next) break;
      if (conn->busy) {
        conn->backlog.push_back(std::move(payload));
        continue;
      }
    }
    DispatchInline(conn, payload);
  }
  if (peer_closed) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
  }
}

void Server::DispatchInline(const std::shared_ptr<Conn>& conn,
                            const std::string& payload) {
  Request req;
  Status st = DecodeRequest(payload, &req);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out += EncodeFrame(EncodeResponse(ErrResp(st)));
    conn->closing = true;
    return;
  }
  if (is_slow_(req.type)) {
    bool shed = false;
    {
      // Capacity check and enqueue are atomic under admin_mu_; busy is
      // flipped inside the same critical section (conn->mu nests under
      // admin_mu_ here and nowhere else) so a shed never leaves a
      // connection parked busy with no admin job to un-park it.
      std::lock_guard<std::mutex> lock(admin_mu_);
      if (admin_queue_.size() >= options_.max_admin_queue) {
        shed = true;
      } else {
        {
          std::lock_guard<std::mutex> clock(conn->mu);
          conn->busy = true;
        }
        admin_queue_.push_back(AdminJob{conn, std::move(req)});
        admin_queue_depth_.store(admin_queue_.size());
      }
    }
    if (!shed) {
      admin_cv_.notify_one();
      return;
    }
    admin_shed_total_.fetch_add(1);
    Response busy;
    busy.kind = RespKind::kBusy;
    busy.message = "admin queue full";
    WriteResponse(conn, busy, /*from_event_loop=*/true);
    return;
  }
  Response resp = RunTraced(fast_, req);
  WriteResponse(conn, resp, /*from_event_loop=*/true);
}

void Server::WriteResponse(const std::shared_ptr<Conn>& conn,
                           const Response& resp, bool from_event_loop) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->out += EncodeFrame(EncodeResponse(resp));
  }
  requests_served_.fetch_add(1);
  if (!from_event_loop) WakeLoop();
}

void Server::AdminLoop() {
  while (true) {
    AdminJob job;
    {
      std::unique_lock<std::mutex> lock(admin_mu_);
      admin_cv_.wait(lock,
                     [&] { return admin_stop_ || !admin_queue_.empty(); });
      if (admin_queue_.empty()) return;  // stop requested, queue drained
      job = std::move(admin_queue_.front());
      admin_queue_.pop_front();
      admin_queue_depth_.store(admin_queue_.size());
    }
    Response resp = RunTraced(slow_, job.request);
    WriteResponse(job.conn, resp, /*from_event_loop=*/false);
    // Drain frames that arrived while the slow RPC ran, in arrival
    // order. New frames may keep landing (busy stays true), so loop
    // until the backlog is empty at the moment we clear busy.
    while (true) {
      std::string payload;
      {
        std::lock_guard<std::mutex> lock(job.conn->mu);
        if (job.conn->backlog.empty() || job.conn->dead) {
          job.conn->busy = false;
          job.conn->backlog.clear();
          break;
        }
        payload = std::move(job.conn->backlog.front());
        job.conn->backlog.pop_front();
      }
      Request req;
      Status st = DecodeRequest(payload, &req);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(job.conn->mu);
        job.conn->out += EncodeFrame(EncodeResponse(ErrResp(st)));
        job.conn->closing = true;
        job.conn->busy = false;
        job.conn->backlog.clear();
        break;
      }
      // Either kind runs inline here — we ARE the admin thread, and the
      // fast handler is thread-safe by contract.
      Response backlog_resp =
          RunTraced(is_slow_(req.type) ? slow_ : fast_, req);
      WriteResponse(job.conn, backlog_resp, /*from_event_loop=*/false);
    }
    WakeLoop();
  }
}

void Server::SweepConns() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    const int fd = it->first;
    Conn* conn = it->second.get();
    bool reap = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->dead && !conn->out.empty()) {
        // Opportunistic nonblocking flush; leftovers wait for EPOLLOUT.
        ssize_t n = ::send(fd, conn->out.data(), conn->out.size(),
                           MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
          conn->out.erase(0, static_cast<size_t>(n));
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          conn->dead = true;
        }
      }
      const bool want_out = !conn->dead && !conn->out.empty();
      if (want_out != conn->want_out) {
        epoll_event ev{};
        ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0);
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        conn->want_out = want_out;
      }
      if (conn->dead || (conn->closing && conn->out.empty())) {
        // A busy conn's admin job still holds the shared_ptr; it sees
        // `dead` and drops its writes.
        conn->dead = true;
        reap = true;
      }
    }
    if (reap) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      CloseFd(fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace wfit::net
