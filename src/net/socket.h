// Thin POSIX socket helpers shared by the server and client: address
// resolution, listen/connect, and full-buffer writes. Everything returns
// Status instead of errno so callers compose with the rest of the
// library's error handling.
#ifndef WFIT_NET_SOCKET_H_
#define WFIT_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wfit::net {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port — read it back with LocalPort). SO_REUSEADDR is set so
/// restarts do not trip over TIME_WAIT.
StatusOr<int> ListenTcp(const std::string& host, uint16_t port,
                        int backlog = 64);

/// Connect to host:port. With timeout_ms >= 0 the connect itself is
/// bounded (non-blocking connect + poll) so a black-holed peer cannot
/// stall the caller for the kernel's SYN timeout; the returned socket is
/// blocking either way. timeout_ms < 0 keeps the historic fully blocking
/// behavior. Consults the FaultInjector (partitions, scripted connect
/// drops) when one is installed.
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port,
                         int timeout_ms = -1);

/// The port a socket is actually bound to (ephemeral-bind readback).
StatusOr<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

/// Writes the whole buffer, retrying on short writes and EINTR. Only for
/// blocking sockets (the client); the server's event loop buffers
/// partial writes itself. When a FaultInjector is installed, dialed
/// connections may see the send dropped, torn (a strict prefix hits the
/// wire), duplicated (the peer receives it twice), or delayed — every
/// injected fault surfaces as a non-OK Status so the caller tears the
/// connection down exactly as it would for a real transport failure.
Status WriteAll(int fd, std::string_view data);

/// recv(2) passthrough used by the blocking client: returns the raw
/// return value with errno preserved (0 = peer closed, <0 = error /
/// SO_RCVTIMEO timeout). Exists so the FaultInjector can stall reads on
/// dialed connections.
ssize_t RecvSome(int fd, char* buf, size_t cap);

/// close(2) tolerant of EINTR; safe on -1.
void CloseFd(int fd);

}  // namespace wfit::net

#endif  // WFIT_NET_SOCKET_H_
