// Thin POSIX socket helpers shared by the server and client: address
// resolution, listen/connect, and full-buffer writes. Everything returns
// Status instead of errno so callers compose with the rest of the
// library's error handling.
#ifndef WFIT_NET_SOCKET_H_
#define WFIT_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wfit::net {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port — read it back with LocalPort). SO_REUSEADDR is set so
/// restarts do not trip over TIME_WAIT.
StatusOr<int> ListenTcp(const std::string& host, uint16_t port,
                        int backlog = 64);

/// Blocking connect to host:port.
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port);

/// The port a socket is actually bound to (ephemeral-bind readback).
StatusOr<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

/// Writes the whole buffer, retrying on short writes and EINTR. Only for
/// blocking sockets (the client); the server's event loop buffers
/// partial writes itself.
Status WriteAll(int fd, std::string_view data);

/// close(2) tolerant of EINTR; safe on -1.
void CloseFd(int fd);

}  // namespace wfit::net

#endif  // WFIT_NET_SOCKET_H_
