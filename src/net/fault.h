// Deterministic fault injection below the socket helpers: a process-wide
// seam that net/socket.cc consults on connect, send and receive, so chaos
// tests and the failover bench can script transport misbehavior — dropped
// connects, dropped / torn / duplicated sends, injected delays, and
// one-way partitions — without touching kernel state or real networks.
//
// Determinism: every connection gets its own Rng stream derived from
// (seed, connection ordinal), so the fault schedule a connection sees
// depends only on its own operation sequence. Faults never corrupt
// payloads silently — a torn or duplicated send always fails the calling
// RPC, which forces the client through the same reconnect/retry path a
// real mid-stream failure would, and exactly-once submission absorbs the
// duplicates. That is what keeps fault-injected runs trajectory-identical
// to clean ones.
//
// Partitions are keyed by DESTINATION ("host:port"): blocking a
// destination stops new connects and poisons established connections
// toward it while traffic in the other direction flows untouched — a
// one-way partition as seen from this process.
//
// Only connections opened through ConnectTcp participate (the dial side
// registers the fd); server-accepted fds pass through untouched.
#ifndef WFIT_NET_FAULT_H_
#define WFIT_NET_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace wfit::net {

struct FaultOptions {
  uint64_t seed = 1;
  /// Probability a ConnectTcp attempt fails outright.
  double connect_fail = 0.0;
  /// Probability a send fails without writing anything (connection lost).
  double send_drop = 0.0;
  /// Probability a send writes a strict prefix, then fails (torn write).
  double send_tear = 0.0;
  /// Probability the payload is delivered twice, then the call fails —
  /// the peer sees a duplicate; the caller reconnects and retries.
  double send_dup = 0.0;
  /// Probability of an injected stall before a send or receive.
  double delay = 0.0;
  int delay_ms = 2;
};

class FaultInjector {
 public:
  /// What WriteAll should do with one send. `tear_bytes` is meaningful
  /// only for kTear (strictly less than the payload size).
  enum class SendAction : uint8_t { kPass, kDrop, kTear, kDup };
  struct SendPlan {
    SendAction action = SendAction::kPass;
    size_t tear_bytes = 0;
    int delay_ms = 0;
  };

  struct Counters {
    uint64_t connects_failed = 0;
    uint64_t sends_dropped = 0;
    uint64_t sends_torn = 0;
    uint64_t sends_duplicated = 0;
    uint64_t delays = 0;
    uint64_t partition_blocks = 0;
    uint64_t total() const {
      return connects_failed + sends_dropped + sends_torn +
             sends_duplicated + delays + partition_blocks;
    }
  };

  /// Installs the process-wide injector (replacing any previous one).
  /// Tests pair this with Uninstall, typically via ScopedFaultInjection.
  static void Install(const FaultOptions& options);
  static void Uninstall();
  /// The installed injector, or null when fault injection is off — the
  /// fast path every socket helper checks first.
  static FaultInjector* Get();

  // --- Scripted partitions ----------------------------------------------
  /// Blocks this process's traffic TOWARD host:port (connects fail,
  /// sends on established connections fail). Traffic FROM host:port is
  /// untouched — a one-way partition.
  void PartitionTo(const std::string& host, uint16_t port);
  void HealTo(const std::string& host, uint16_t port);
  void HealAll();

  // --- Hooks for socket.cc ----------------------------------------------
  /// Non-OK when the connect must fail (partition or scripted drop).
  Status OnConnect(const std::string& host, uint16_t port);
  /// Associates a successfully connected fd with its destination and a
  /// fresh deterministic fault stream.
  void RegisterFd(int fd, const std::string& host, uint16_t port);
  void ForgetFd(int fd);
  /// The injector's verdict for one send of `payload_bytes` on fd.
  SendPlan PlanSend(int fd, size_t payload_bytes);
  /// Milliseconds to stall before the next receive on fd (usually 0).
  int PlanRecvDelayMs(int fd);

  Counters counters() const;

 private:
  explicit FaultInjector(const FaultOptions& options);

  struct Conn {
    std::string dest;  // "host:port"
    Rng rng;
    explicit Conn(std::string d, uint64_t seed)
        : dest(std::move(d)), rng(seed) {}
  };

  FaultOptions options_;
  mutable std::mutex mu_;
  std::set<std::string> blocked_;
  std::map<int, Conn> conns_;
  uint64_t next_conn_ordinal_ = 0;
  Rng connect_rng_;
  Counters counters_;
};

/// RAII install/uninstall for tests.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultOptions& options) {
    FaultInjector::Install(options);
  }
  ~ScopedFaultInjection() { FaultInjector::Uninstall(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace wfit::net

#endif  // WFIT_NET_FAULT_H_
