// Wire protocol: the RPC vocabulary the cluster speaks, serialized with
// the same persist/codec primitives (and the same Statement record
// layout) the on-disk journal uses. Each RPC is one Request frame out,
// one Response frame back, in order, over a plain framed TCP stream (see
// net/frame.h for the framing).
//
// The Request/Response structs are deliberately flat unions-by-
// convention: every message type reads the fields it cares about and
// ignores the rest, and the codec always encodes every field. That costs
// a few bytes per message but keeps the protocol versionable with a
// single version byte and makes torn/garbled input a pure Decoder error.
#ifndef WFIT_NET_WIRE_H_
#define WFIT_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/index_set.h"
#include "workload/statement.h"

namespace wfit::net {

/// Bumped on any incompatible layout change; both sides refuse mismatches
/// beyond the explicit compatibility window below.
/// v2: added Request::node_id + the membership RPCs (kHeartbeat,
/// kDecommission).
/// v3: appended the trace-context extension (trace_id + parent_span) to
/// Request and added kDumpTrace/kGetHealth. v3 decoders still accept v2
/// payloads — the trace fields read as zero ("no trace"), so a mixed-
/// version fleet keeps working and merely loses cross-node stitching.
inline constexpr uint8_t kWireVersion = 3;
inline constexpr uint8_t kMinWireVersion = 2;

enum class MsgType : uint8_t {
  kPing = 1,
  // Tuning data plane.
  kSubmit = 2,           // tenant, statement
  kSubmitAt = 3,         // tenant, seq, statement (exactly-once)
  kFeedback = 4,         // tenant, f_plus, f_minus
  kFeedbackAfter = 5,    // tenant, seq (= after_seq), f_plus, f_minus
  kGetRecommendation = 6,  // tenant
  kGetAnalyzed = 7,        // tenant
  // Observability.
  kScrapeMetrics = 8,    // whole-node Prometheus text
  kListTenants = 9,
  kGetHistory = 10,      // tenant; not ownership-checked (see node.h)
  kGetConfig = 11,
  // Admin plane (slow path).
  kMigrate = 12,     // tenant, target_node: orchestrate handoff to target
  kMigrateIn = 13,   // tenant, pack, votes, config_blob: receiving side
  kDrain = 14,       // evict every idle tenant (checkpoint-then-close)
  kSetConfig = 15,   // config_blob: adopt a newer cluster config
  kShutdownNode = 16,
  // Membership (fast path): node_id = sender, seq = sender's config
  // version; the receiver answers with its own node id in owner_id and
  // its config version in config_version, so both sides learn who is
  // fresher from a single round trip.
  kHeartbeat = 17,
  // Admin plane: drain target_node (migrating every tenant to its
  // rendezvous owner among the remaining nodes) and drop it from the
  // cluster config. Handled by any membership-enabled node.
  kDecommission = 18,
  // Observability (v3).
  kDumpTrace = 19,   // span-line dump of the node's trace rings (slow path)
  kGetHealth = 20,   // health-plane JSON report (fast path)
};

/// Stable lowercase name for spans/logs ("submit_at", "migrate_in", ...).
const char* MsgTypeName(MsgType type);

/// A future-keyed DBA vote in flight during a migration handoff.
struct VoteWire {
  uint64_t after_seq = 0;
  IndexSet plus;
  IndexSet minus;
};

struct Request {
  MsgType type = MsgType::kPing;
  std::string tenant;
  uint64_t seq = 0;         // kSubmitAt sequence / kFeedbackAfter boundary
  bool has_statement = false;
  Statement statement;
  IndexSet f_plus;
  IndexSet f_minus;
  std::string target_node;  // kMigrate: receiving node id
  std::string pack;         // kMigrateIn: packed checkpoint tree
  std::vector<VoteWire> votes;  // kMigrateIn: carried votes
  std::string config_blob;  // kMigrateIn / kSetConfig: encoded ClusterConfig
  std::string node_id;      // kHeartbeat: sender's node id
  // Trace-context extension (v3; zero = no trace). Stamped by the client
  // from the calling thread's context; the server installs it around the
  // handler so every node's spans stitch into one distributed trace.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

enum class RespKind : uint8_t {
  kOk = 0,
  /// `code` + `message` carry the failure; the connection stays usable.
  kError = 1,
  /// This node does not own the tenant; `owner_*` + `config_version` let
  /// the client repair its routing table and retry at the right node.
  kNotLeader = 2,
  /// The tenant's ingest queue is full (backpressure) — retry after a
  /// short delay. Never blocks the server's event loop.
  kBusy = 3,
};

struct Response {
  RespKind kind = RespKind::kOk;
  StatusCode code = StatusCode::kOk;  // kError detail
  std::string message;
  // kNotLeader redirect payload.
  std::string owner_id;
  std::string owner_host;
  uint32_t owner_port = 0;
  uint64_t config_version = 0;
  // Result payloads (per request type; zero-valued when not applicable).
  IndexSet configuration;   // kGetRecommendation
  uint64_t analyzed = 0;    // kGetRecommendation / kGetAnalyzed
  uint64_t version = 0;     // recommendation publication version
  std::string text;         // kScrapeMetrics / kGetConfig / kPing echo
  // kListTenants: resident tenants first (sorted), then persisted-only
  // tenants (sorted); `count` holds the resident prefix length so the
  // rebalancer can read load without a second RPC.
  std::vector<std::string> tenants;
  std::vector<IndexSet> history;      // kGetHistory
  uint64_t history_start = 0;         // kGetHistory
  uint64_t count = 0;       // kDrain evicted / kMigrate handoff millis
};

std::string EncodeRequest(const Request& req);
/// Same, with the trace context supplied explicitly (the client stamps
/// the calling thread's context without copying the request).
std::string EncodeRequest(const Request& req, uint64_t trace_id,
                          uint64_t parent_span);
Status DecodeRequest(std::string_view payload, Request* out);

std::string EncodeResponse(const Response& resp);
Status DecodeResponse(std::string_view payload, Response* out);

/// Convenience constructors for the common handler results.
Response OkResp();
Response ErrResp(const Status& status);

}  // namespace wfit::net

#endif  // WFIT_NET_WIRE_H_
