#include "net/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "net/socket.h"
#include "obs/trace.h"

namespace wfit::net {

Status Client::Connect(const std::string& host, uint16_t port,
                       Options options) {
  Close();
  options_ = options;
  // Bound the connect by the RPC timeout too: a black-holed peer must
  // not stall the caller for the kernel's SYN timeout.
  auto fd = ConnectTcp(host, port, options_.timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  timeval tv{};
  tv.tv_sec = options_.timeout_ms / 1000;
  tv.tv_usec = (options_.timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  reader_ = FrameReader(options_.max_frame_bytes);
  return Status::Ok();
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

StatusOr<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  // A caller-pinned context (deterministic per-statement ids from the
  // replay driver) overrides the thread's; either way the client span
  // below becomes the parent of the server-side handler span.
  obs::ScopedTraceContext pinned(
      request.trace_id != 0
          ? obs::TraceContext{request.trace_id, request.parent_span}
          : obs::CurrentTraceContext());
  char span_name[24];
  std::snprintf(span_name, sizeof(span_name), "cli.%s",
                MsgTypeName(request.type));
  obs::SpanGuard span(span_name);
  auto result = CallInner(request);
  // Transport/protocol failure leaves the stream in an unknowable state
  // (a late or partial response would answer the WRONG request next
  // call); drop the connection so the caller reconnects cleanly.
  if (!result.ok()) Close();
  return result;
}

StatusOr<Response> Client::CallInner(const Request& request) {
  // Stamp the current thread context (Call installed the caller's pin
  // and its own client span) into the wire extension.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  WFIT_RETURN_IF_ERROR(WriteAll(
      fd_,
      EncodeFrame(EncodeRequest(request, ctx.trace_id, ctx.parent_span))));
  std::string payload;
  while (true) {
    auto next = reader_.Next(&payload);
    if (!next.ok()) return next.status();
    if (*next) break;
    char buf[64 * 1024];
    ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Internal(
          reader_.pending_bytes() > 0
              ? "client: connection closed mid-RPC (torn response)"
              : "client: connection closed before the response");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Internal("client: RPC timed out after " +
                              std::to_string(options_.timeout_ms) + "ms");
    }
    return Status::Internal(std::string("client: recv: ") +
                            std::strerror(errno));
  }
  Response resp;
  WFIT_RETURN_IF_ERROR(DecodeResponse(payload, &resp));
  return resp;
}

}  // namespace wfit::net
