// A small epoll TCP server for the tuning RPC protocol. One event-loop
// thread multiplexes every connection (accept, framed reads, framed
// writes) and runs FAST handlers inline — those must never block, which
// is why the router grew TrySubmitAt (kBusy backpressure instead of
// blocking). SLOW requests (migration, drain — seconds of checkpoint
// I/O) hop to a single admin thread so the data plane stays live while
// they run.
//
// Per-connection response ordering survives the two-thread split: while
// a connection has a slow RPC in flight it is `busy`, and every frame
// that arrives in the meantime is parked in that connection's backlog.
// The admin thread answers the slow RPC, then drains the backlog in
// arrival order (fast or slow alike) before clearing `busy` — so each
// connection always sees responses in request order, pipelining included.
#ifndef WFIT_NET_SERVER_H_
#define WFIT_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/wire.h"

namespace wfit::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port().
  uint16_t port = 0;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Admin (slow-path) jobs queued beyond this respond kBusy instead of
  /// queueing unboundedly — a stall in one checkpoint-sized RPC must not
  /// let a retrying client grow the queue without limit.
  size_t max_admin_queue = 128;
  /// Admin worker threads. Must be >= 2: a decommission occupies one
  /// worker while it orchestrates remote migrations, and the resulting
  /// kMigrateIn callbacks land on another — with a single worker that
  /// cycle deadlocks until the RPC times out. Per-connection ordering is
  /// unaffected (one in-flight admin job per connection, ever).
  size_t admin_workers = 2;
};

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;
  /// Routes a request type to the admin thread instead of the event loop.
  using SlowPredicate = std::function<bool(MsgType)>;

  /// `fast` runs on the event-loop thread and must not block; `slow` runs
  /// on the admin thread and may take seconds. Both must be thread-safe
  /// against each other (they run concurrently for different requests).
  Server(Handler fast, Handler slow, SlowPredicate is_slow,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the event loop and admin threads. Once only.
  Status Start();

  /// Stops accepting, finishes queued admin jobs, closes connections
  /// (best-effort final flush). Idempotent.
  void Shutdown();

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  uint64_t requests_served() const { return requests_served_.load(); }
  /// Admin jobs currently queued (excludes the one being executed).
  size_t admin_queue_depth() const { return admin_queue_depth_.load(); }
  /// Admin jobs shed with kBusy because the queue was at max_admin_queue.
  uint64_t admin_shed_total() const { return admin_shed_total_.load(); }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::mutex mu;
    std::string out;            // encoded frames awaiting the socket
    std::deque<std::string> backlog;  // frames parked while busy
    bool busy = false;          // a slow RPC (or its backlog) in flight
    bool closing = false;       // flush out, then close (protocol error)
    bool dead = false;          // fd closed; drop any late writes
    bool want_out = false;      // EPOLLOUT currently registered

    explicit Conn(uint32_t max_frame) : reader(max_frame) {}
  };

  struct AdminJob {
    std::shared_ptr<Conn> conn;
    Request request;
  };

  void EventLoop();
  void AdminLoop();
  void AcceptReady();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Decode + route one frame; called with conn not busy.
  void DispatchInline(const std::shared_ptr<Conn>& conn,
                      const std::string& payload);
  /// Appends an encoded response frame; wakes the loop when called off
  /// the event-loop thread.
  void WriteResponse(const std::shared_ptr<Conn>& conn,
                     const Response& resp, bool from_event_loop);
  /// Flush attempts + epoll interest updates + reaping, every iteration.
  void SweepConns();
  void WakeLoop();

  Handler fast_;
  Handler slow_;
  SlowPredicate is_slow_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::map<int, std::shared_ptr<Conn>> conns_;  // event-loop thread only

  std::thread loop_thread_;
  std::vector<std::thread> admin_threads_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool shut_down_ = false;

  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  std::deque<AdminJob> admin_queue_;
  bool admin_stop_ = false;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<size_t> admin_queue_depth_{0};
  std::atomic<uint64_t> admin_shed_total_{0};
};

}  // namespace wfit::net

#endif  // WFIT_NET_SERVER_H_
