#include "net/frame.h"

#include <cstring>

#include "common/check.h"
#include "common/crc32.h"

namespace wfit::net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  WFIT_CHECK(payload.size() <= kMaxFrameBytes,
             "EncodeFrame: payload exceeds the frame size bound");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out.append(payload);
  return out;
}

StatusOr<bool> FrameReader::Next(std::string* payload) {
  if (poisoned_) return poison_;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  const char* base = buf_.data() + pos_;
  const uint32_t len = ReadU32(base);
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    poison_ = Status::InvalidArgument(
        "frame: length prefix " + std::to_string(len) +
        " exceeds the maximum frame size " +
        std::to_string(max_frame_bytes_));
    return poison_;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + len) return false;
  const uint32_t want_crc = ReadU32(base + 4);
  std::string_view body(base + kFrameHeaderBytes, len);
  const uint32_t got_crc = Crc32(body);
  if (got_crc != want_crc) {
    poisoned_ = true;
    poison_ = Status::InvalidArgument("frame: payload CRC mismatch");
    return poison_;
  }
  payload->assign(body);
  pos_ += kFrameHeaderBytes + len;
  return true;
}

}  // namespace wfit::net
