#include "net/fault.h"

#include <algorithm>
#include <atomic>

namespace wfit::net {
namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// splitmix64: decorrelates the per-connection streams from the base seed
// so consecutive connection ordinals don't get correlated mt19937 states.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string DestKey(const std::string& host, uint16_t port) {
  return host + ":" + std::to_string(port);
}

}  // namespace

FaultInjector::FaultInjector(const FaultOptions& options)
    : options_(options), connect_rng_(Mix(options.seed ^ 0xc0fefeULL)) {}

void FaultInjector::Install(const FaultOptions& options) {
  Uninstall();
  g_injector.store(new FaultInjector(options), std::memory_order_release);
}

void FaultInjector::Uninstall() {
  FaultInjector* old = g_injector.exchange(nullptr, std::memory_order_acq_rel);
  delete old;
}

FaultInjector* FaultInjector::Get() {
  return g_injector.load(std::memory_order_acquire);
}

void FaultInjector::PartitionTo(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.insert(DestKey(host, port));
}

void FaultInjector::HealTo(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.erase(DestKey(host, port));
}

void FaultInjector::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.clear();
}

Status FaultInjector::OnConnect(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string dest = DestKey(host, port);
  if (blocked_.count(dest) != 0) {
    ++counters_.partition_blocks;
    return Status::Internal("fault: one-way partition to " + dest);
  }
  if (options_.connect_fail > 0.0 &&
      connect_rng_.Bernoulli(options_.connect_fail)) {
    ++counters_.connects_failed;
    return Status::Internal("fault: connect to " + dest + " dropped");
  }
  return Status::Ok();
}

void FaultInjector::RegisterFd(int fd, const std::string& host,
                               uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ordinal = next_conn_ordinal_++;
  conns_.erase(fd);
  conns_.emplace(fd, Conn(DestKey(host, port),
                          Mix(options_.seed) ^ Mix(ordinal + 1)));
}

void FaultInjector::ForgetFd(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  conns_.erase(fd);
}

FaultInjector::SendPlan FaultInjector::PlanSend(int fd, size_t payload_bytes) {
  SendPlan plan;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return plan;  // not a dialed connection
  Conn& conn = it->second;
  if (blocked_.count(conn.dest) != 0) {
    ++counters_.partition_blocks;
    plan.action = SendAction::kDrop;
    return plan;
  }
  if (options_.delay > 0.0 && conn.rng.Bernoulli(options_.delay)) {
    ++counters_.delays;
    plan.delay_ms = options_.delay_ms;
  }
  if (options_.send_drop > 0.0 && conn.rng.Bernoulli(options_.send_drop)) {
    ++counters_.sends_dropped;
    plan.action = SendAction::kDrop;
    return plan;
  }
  if (options_.send_tear > 0.0 && conn.rng.Bernoulli(options_.send_tear) &&
      payload_bytes > 1) {
    ++counters_.sends_torn;
    plan.action = SendAction::kTear;
    plan.tear_bytes = static_cast<size_t>(conn.rng.UniformInt(
        1, static_cast<int64_t>(std::min<size_t>(payload_bytes - 1, 1 << 20))));
    return plan;
  }
  if (options_.send_dup > 0.0 && conn.rng.Bernoulli(options_.send_dup)) {
    ++counters_.sends_duplicated;
    plan.action = SendAction::kDup;
    return plan;
  }
  return plan;
}

int FaultInjector::PlanRecvDelayMs(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return 0;
  if (options_.delay > 0.0 && it->second.rng.Bernoulli(options_.delay)) {
    ++counters_.delays;
    return options_.delay_ms;
  }
  return 0;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace wfit::net
