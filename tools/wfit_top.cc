// wfit_top: a console dashboard for the tuning fleet's health plane.
// Polls every node's kGetHealth report (membership states, lease ages,
// queue depths, residency, failover/rebalance counters, trace volume)
// and renders one refreshing table; --scrape prints the node-labelled
// merged Prometheus exposition instead.
//
//   wfit_top --nodes=a=127.0.0.1:7501,b=127.0.0.1:7502 [--interval_ms=1000]
//   wfit_top --nodes=... --once            # one sample, no screen clear
//   wfit_top --nodes=... --scrape --once   # merged fleet metrics to stdout
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/placement.h"
#include "obs/health.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

struct Flags {
  std::string nodes;
  int interval_ms = 1000;
  bool once = false;
  bool scrape = false;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--nodes")) {
      flags->nodes = v;
    } else if (const char* v = value("--interval_ms")) {
      flags->interval_ms = std::atoi(v);
    } else if (arg == "--once") {
      flags->once = true;
    } else if (arg == "--scrape") {
      flags->scrape = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return !flags->nodes.empty();
}

void PrintDashboard(const wfit::cluster::FleetHealth& fleet) {
  using std::setw;
  std::cout << setw(6) << "node" << setw(7) << "coord" << setw(9)
            << "tenants" << setw(7) << "queue" << setw(12) << "analyzed"
            << setw(10) << "failover" << setw(10) << "rebal" << setw(12)
            << "takeover" << setw(10) << "spans" << setw(8) << "drops"
            << "\n";
  for (const wfit::obs::NodeHealthReport& n : fleet.nodes) {
    std::cout << setw(6) << n.node_id << setw(7)
              << (n.acting_coordinator ? "*" : "") << setw(5)
              << n.tenants_resident << "/" << std::left << setw(3)
              << n.tenants_known << std::right << setw(7) << n.queue_depth
              << setw(12) << n.statements_analyzed << setw(10)
              << n.failovers << setw(10) << n.rebalance_migrations
              << setw(10) << n.last_takeover_ms << "ms" << setw(10)
              << n.trace_spans << setw(8) << n.trace_dropped << "\n";
    for (const wfit::obs::PeerHealthEntry& p : n.peers) {
      std::cout << "       peer " << setw(6) << p.id << "  " << setw(8)
                << p.health << "  misses " << p.consecutive_misses
                << "  silence " << p.silence_ms << "ms\n";
    }
  }
  for (const std::string& id : fleet.unreachable) {
    std::cout << setw(6) << id << "  UNREACHABLE\n";
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::cerr << "usage: wfit_top --nodes=id=host:port,... [--interval_ms=N]"
                 " [--once] [--scrape]\n";
    return 2;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  auto config = wfit::cluster::ParseNodeList(flags.nodes);
  if (!config.ok()) {
    std::cerr << "bad --nodes: " << config.status().ToString() << "\n";
    return 2;
  }
  wfit::cluster::ClusterClientOptions copts;
  copts.rpc.timeout_ms = 2000;
  copts.retry_deadline_ms = 2000;
  wfit::cluster::ClusterClient client(*config, copts);

  while (g_stop == 0) {
    if (flags.scrape) {
      std::cout << client.ScrapeFleet();
    } else {
      wfit::cluster::FleetHealth fleet = client.FetchFleetHealth();
      if (!flags.once) std::cout << "\033[2J\033[H";
      PrintDashboard(fleet);
      if (flags.once) return fleet.nodes.empty() ? 1 : 0;
    }
    if (flags.once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(flags.interval_ms));
  }
  return 0;
}
