#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_service.json against the
committed baseline and fail on significant throughput regressions.

Usage:
    check_bench.py FRESH BASELINE [--max-regression=0.25]

Both files are flat JSON objects of numeric members (what
harness::UpdateBenchJson writes). Only the GATED keys fail the build —
higher-is-better throughput series whose fresh value may not fall more
than --max-regression below the baseline. Every other key shared by the
two files is reported informationally. A gated key missing from the fresh
file fails (the bench stopped emitting it); one missing from the baseline
only warns (a new metric — land it in the baseline with the next update).

Update the baseline by copying the release-bench job's BENCH_service.json
artifact over BENCH_baseline.json in a PR that justifies the new numbers.
"""

import json
import sys

# Higher-is-better series the gate enforces.
GATED = [
    "wfit_auto_stmts_per_min",
    "tenants_aggregate_stmts_per_min",
    "net_rpc_round_trips_per_sec",
    "cluster_two_node_stmts_per_min",
]

# Lower-is-better series: the fresh value may not rise more than
# --max-regression above the baseline.
GATED_LOWER = [
    "migration_handoff_ms",
    "failover_takeover_ms",
    "qos_light_tenant_p99_ms",
    "overload_recovery_s",
]

# Absolute ceilings, enforced against the fresh value alone (no baseline
# needed). tracing_overhead_pct: runtime-enabled tracing may cost at most
# this percentage of single-threaded replay wall time.
GATED_ABSOLUTE_MAX = {
    "tracing_overhead_pct": 5.0,
}

# Absolute floors, enforced against the fresh value alone. These pin the
# two scale-out claims of the durability layer: a steady-state delta
# snapshot must stay several times smaller than a full snapshot (the
# ~6.4 KiB serialized RNG stream plus the touched selector windows are
# the irreducible floor, so the ratio is bounded but deterministic), and
# the shared fsync batcher must coalesce shard syncs by at least this
# factor even on a loaded machine where some shards miss a drain window.
GATED_ABSOLUTE_MIN = {
    "checkpoint_delta_reduction": 3.0,
    "group_commit_fsync_reduction": 4.0,
}


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"check_bench: {path} is not a flat JSON object")
    return {k: v for k, v in data.items() if isinstance(v, (int, float))}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        sys.exit(__doc__)
    max_regression = 0.25
    for opt in opts:
        if opt.startswith("--max-regression="):
            max_regression = float(opt.split("=", 1)[1])
        else:
            sys.exit(f"check_bench: unknown option {opt}")

    fresh = load(args[0])
    baseline = load(args[1])
    failures = []

    print(f"bench-regression gate (max regression {max_regression:.0%})")
    for key in GATED + GATED_LOWER:
        lower_is_better = key in GATED_LOWER
        if key not in baseline:
            print(f"  WARN  {key}: not in baseline (new metric?)")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh results")
            print(f"  FAIL  {key}: missing from fresh results")
            continue
        base, now = baseline[key], fresh[key]
        if base <= 0:
            print(f"  WARN  {key}: non-positive baseline {base}")
            continue
        change = (now - base) / base
        regressed = (
            change > max_regression if lower_is_better
            else change < -max_regression
        )
        verdict = "ok"
        if regressed:
            verdict = "FAIL"
            failures.append(
                f"{key}: {now:.0f} vs baseline {base:.0f} ({change:+.1%})"
            )
        print(f"  {verdict:4}  {key}: {now:.0f} vs {base:.0f} ({change:+.1%})")

    for key, bound in GATED_ABSOLUTE_MAX.items():
        if key not in fresh:
            failures.append(f"{key}: missing from fresh results")
            print(f"  FAIL  {key}: missing from fresh results")
            continue
        now = fresh[key]
        if now > bound:
            failures.append(f"{key}: {now:.2f} exceeds absolute bound {bound}")
            print(f"  FAIL  {key}: {now:.2f} > {bound} (absolute bound)")
        else:
            print(f"  ok    {key}: {now:.2f} <= {bound} (absolute bound)")

    for key, bound in GATED_ABSOLUTE_MIN.items():
        if key not in fresh:
            failures.append(f"{key}: missing from fresh results")
            print(f"  FAIL  {key}: missing from fresh results")
            continue
        now = fresh[key]
        if now < bound:
            failures.append(f"{key}: {now:.2f} below absolute floor {bound}")
            print(f"  FAIL  {key}: {now:.2f} < {bound} (absolute floor)")
        else:
            print(f"  ok    {key}: {now:.2f} >= {bound} (absolute floor)")

    informational = sorted(
        k for k in fresh.keys() & baseline.keys()
        if k not in GATED and k not in GATED_LOWER
        and k not in GATED_ABSOLUTE_MAX
        and k not in GATED_ABSOLUTE_MIN
    )
    if informational:
        print("informational drift:")
        for key in informational:
            base, now = baseline[key], fresh[key]
            if base:
                change = (now - base) / base
            else:
                change = 0.0 if now == base else float("inf")
            print(f"        {key}: {now:g} vs {base:g} ({change:+.1%})")

    if failures:
        print("\nFAILED:", "; ".join(failures))
        return 1
    print("\nPASS: no gated regression")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
