#!/usr/bin/env python3
"""Docs-coverage gate: every exported wfit_* metric family must be
documented.

Scans the metric emitters under src/ for the Prometheus families they
export — both fully spelled literals ("# HELP wfit_node_config_version
...") and spliced ones (Counter(os, "statements_analyzed_total", ...)
inside a helper whose body stamps the "wfit_service_" prefix) — and fails
if any family name is absent from the operator docs (docs/*.md, README.md).

An alerting runbook that lags the code is worse than none: a family that
ships undocumented is invisible to the operator reading OPERATIONS.md.

Usage: check_docs.py [repo_root]
"""

import os
import re
import sys

# Files that emit Prometheus text. Extend when a new export surface
# appears (the scan below also reports stray prefixes it cannot resolve).
EMITTER_FILES = [
    "src/service/metrics.cc",
    "src/service/tenant_router.cc",
    "src/cluster/node.cc",
]

DOC_FILES_GLOB = ["docs", "README.md"]

PREFIX_RE = re.compile(r'"(?:# (?:HELP|TYPE) )?(wfit_[a-z0-9_]*_)"')
FULL_NAME_RE = re.compile(r'"(?:# (?:HELP|TYPE) )?(wfit_[a-z0-9_]*[a-z0-9])[ "{]')
HELPER_DEF_RE = re.compile(r"^\s*(?:template.*\n)?\s*void (\w+)\(", re.M)
LAMBDA_DEF_RE = re.compile(r"^\s*auto (\w+) = \[", re.M)
CALL_RE_TMPL = r'\b%s\(\s*[^");]*?"([a-z][a-z0-9_]*)"'


def body_after(text, start, lines=16):
    """The next `lines` lines after offset `start` — an approximation of a
    small function/lambda body, enough to find the prefix it stamps."""
    end = start
    for _ in range(lines):
        nl = text.find("\n", end + 1)
        if nl < 0:
            return text[start:]
        end = nl
    return text[start:end]


def emitter_prefixes(text):
    """Map helper/lambda name -> wfit_* prefix it splices before `name`."""
    prefixes = {}
    for m in HELPER_DEF_RE.finditer(text):
        body = body_after(text, m.start())
        pm = PREFIX_RE.search(body)
        if pm and "<< name" in body:
            prefixes[m.group(1)] = pm.group(1)
    # One level of indirection: lambdas that forward to a known helper
    # (e.g. `auto counter = [&](const char* name, ...) { TenantFamily(...`).
    for m in LAMBDA_DEF_RE.finditer(text):
        body = body_after(text, m.start())
        for helper, prefix in list(prefixes.items()):
            if helper + "(" in body:
                prefixes[m.group(1)] = prefix
                break
    return prefixes


def families_in(path):
    with open(path) as f:
        text = f.read()
    found = set()
    # Fully spelled family names (raw `os << "# HELP wfit_..."` blocks).
    for m in FULL_NAME_RE.finditer(text):
        found.add(m.group(1))
    # Spliced names: helper calls whose first string literal is the family
    # name minus the prefix the helper stamps.
    for helper, prefix in emitter_prefixes(text).items():
        for m in re.finditer(CALL_RE_TMPL % re.escape(helper), text):
            # A call may pass `name` as a variable (wrapper forwarding), in
            # which case the first literal is the TYPE string, not a name.
            if m.group(1) not in ("counter", "gauge", "histogram"):
                found.add(prefix + m.group(1))
    return found


def doc_text(root):
    chunks = []
    for entry in DOC_FILES_GLOB:
        path = os.path.join(root, entry)
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".md"):
                    with open(os.path.join(path, name)) as f:
                        chunks.append(f.read())
        elif os.path.isfile(path):
            with open(path) as f:
                chunks.append(f.read())
    return "\n".join(chunks)


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    families = set()
    for rel in EMITTER_FILES:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            sys.exit(f"check_docs: emitter file missing: {rel}")
        families |= families_in(path)
    if not families:
        sys.exit("check_docs: no families extracted — emitter idiom changed?")

    docs = doc_text(root)
    missing = sorted(f for f in families if f not in docs)
    print(f"check_docs: {len(families)} exported metric families")
    if missing:
        for name in missing:
            print(f"  UNDOCUMENTED  {name}")
        print(f"\nFAILED: {len(missing)} families missing from docs/ — "
              "add them to docs/OPERATIONS.md")
        return 1
    print("PASS: every family documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
