// The online tuning service end to end: producer threads replay a generated
// benchmark workload into a TunerService wrapping WFIT in deterministic
// stages, while a DBA inspects recommendation snapshots and casts votes.
// Ends with the harness metrics report and the Prometheus text export.
//
// With --checkpoint_dir the service becomes crash-recoverable: every
// statement is write-ahead journaled and state snapshots are taken on a
// cadence. The full kill/recover demo (what the CI crash-recovery smoke
// runs):
//
//   tuning_service_demo --trajectory_out=ref.txt            # reference
//   tuning_service_demo --checkpoint_dir=ckpt --kill_after=300   # dies
//   tuning_service_demo --checkpoint_dir=ckpt
//       --trajectory_out=rec.txt --reference=ref.txt        # recovers,
//                                                           # verifies
//
// The third run loads the latest snapshot, replays the journal suffix,
// finishes the workload, and checks its recommendation trajectory against
// the uninterrupted reference — bit-for-bit.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "optimizer/what_if.h"
#include "service/tenant_router.h"
#include "service/tuner_service.h"
#include "workload/benchmark_trace.h"

namespace {

using namespace wfit;

struct Flags {
  std::string checkpoint_dir;
  std::string trajectory_out;
  std::string reference;
  size_t statements = 600;
  uint64_t checkpoint_every = 200;
  uint64_t kill_after = 0;  // 0 = never
  size_t tenants = 1;       // > 1 routes through a TenantRouter
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("checkpoint_dir")) {
      flags.checkpoint_dir = v;
    } else if (const char* v = value("trajectory_out")) {
      flags.trajectory_out = v;
    } else if (const char* v = value("reference")) {
      flags.reference = v;
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("checkpoint_every")) {
      flags.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("kill_after")) {
      flags.kill_after = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("tenants")) {
      flags.tenants = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: tuning_service_demo [--checkpoint_dir=DIR] "
                   "[--statements=N] [--checkpoint_every=N] "
                   "[--kill_after=K] [--trajectory_out=F] "
                   "[--reference=F] [--tenants=N]\n";
      std::exit(64);
    }
  }
  return flags;
}

/// Deterministic DBA votes, recomputable after a crash: each stage
/// endorses one pre-interned index and vetoes another, rotating through
/// the list.
struct Vote {
  IndexSet plus;
  IndexSet minus;
};

Vote VoteForStage(size_t stage, const std::vector<IndexId>& candidates) {
  Vote v;
  v.plus.Add(candidates[stage % candidates.size()]);
  v.minus.Add(candidates[(stage + 1) % candidates.size()]);
  return v;
}

/// One tenant's fully private environment: catalog, pool, optimizer and a
/// seeded workload — tenants are independent databases.
struct TenantEnv {
  explicit TenantEnv(size_t tenant, size_t statements) {
    catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
    pool = std::make_unique<IndexPool>(&catalog);
    cost_model = std::make_unique<CostModel>(&catalog, pool.get());
    optimizer = std::make_unique<WhatIfOptimizer>(cost_model.get());
    TraceOptions trace_options;
    trace_options.seed += 31 * static_cast<uint64_t>(tenant);
    trace_options.num_phases = 4;
    trace_options.statements_per_phase = (statements + 3) / 4;
    workload = ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));
    workload.resize(statements);
    auto intern = [&](const char* table, std::vector<const char*> cols) {
      IndexDef def;
      def.table = *catalog.FindTable(table);
      for (const char* c : cols) {
        def.columns.push_back(*catalog.FindColumn(def.table, c));
      }
      return pool->Intern(def);
    };
    vote_candidates = {
        intern("tpch.lineitem", {"l_shipdate"}),
        intern("tpch.lineitem", {"l_partkey"}),
        intern("tpch.orders", {"o_orderdate"}),
    };
  }

  Catalog catalog;
  std::unique_ptr<IndexPool> pool;
  std::unique_ptr<CostModel> cost_model;
  std::unique_ptr<WhatIfOptimizer> optimizer;
  Workload workload;
  std::vector<IndexId> vote_candidates;
};

std::string TenantName(size_t t) { return "tenant-" + std::to_string(t); }

/// Writes the "<seq> {ids}" trajectory lines (when out_path is nonempty)
/// and verifies them against a reference run's file (when ref_path is
/// nonempty). `label` prefixes the report lines ("" for the single-tenant
/// flow, "tenant-i " per tenant). Returns 0 when consistent, 1 on an
/// unreadable reference, 2 on trajectory divergence — the demo's
/// exit-code convention.
int WriteAndVerifyTrajectory(const std::vector<IndexSet>& history,
                             uint64_t history_start,
                             const std::string& out_path,
                             const std::string& ref_path,
                             const std::string& label) {
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    for (size_t i = 0; i < history.size(); ++i) {
      out << (history_start + i) << " " << history[i].ToString() << "\n";
    }
    std::cout << "[trajectory] " << label << "wrote " << history.size()
              << " entries to " << out_path << "\n";
  }
  if (ref_path.empty()) return 0;
  std::ifstream ref(ref_path);
  if (!ref) {
    std::cerr << "cannot read reference " << ref_path << "\n";
    return 1;
  }
  std::unordered_map<uint64_t, std::string> expected;
  std::string line;
  while (std::getline(ref, line)) {
    std::istringstream is(line);
    uint64_t seq = 0;
    is >> seq;
    std::string rest;
    std::getline(is, rest);
    expected[seq] = rest;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const uint64_t seq = history_start + i;
    auto it = expected.find(seq);
    std::string got = " ";
    got += history[i].ToString();
    if (it == expected.end() || it->second != got) {
      if (++mismatches <= 5) {
        std::cerr << "[verify] " << label << "statement " << seq << ": got"
                  << got << ", reference"
                  << (it == expected.end() ? std::string(" <missing>")
                                           : it->second)
                  << "\n";
      }
    }
  }
  if (mismatches > 0) {
    std::cerr << "[verify] " << label << "FAILED: " << mismatches << " of "
              << history.size()
              << " recommendations diverge from the reference\n";
    return 2;
  }
  std::cout << "[verify] " << label << "OK: " << history.size()
            << " recommendations match the reference trajectory"
            << " (statements " << history_start << ".."
            << (history_start + history.size()) << ")\n";
  return 0;
}

/// The multi-tenant flow (--tenants=N): N independent databases behind one
/// TenantRouter with a shared drain pool and a per-tenant checkpoint tree
/// under --checkpoint_dir. Supports the same kill/recover/verify protocol
/// as the single-tenant path, with per-tenant trajectory files
/// (<trajectory_out>.<i> / <reference>.<i>).
int RunMultiTenant(const Flags& flags) {
  const size_t n = flags.tenants;
  std::vector<std::unique_ptr<TenantEnv>> envs;
  for (size_t t = 0; t < n; ++t) {
    envs.push_back(std::make_unique<TenantEnv>(t, flags.statements));
  }

  WfitOptions wfit_options;
  wfit_options.candidates.idx_cnt = 16;
  wfit_options.candidates.state_cnt = 256;
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 16;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = flags.checkpoint_every;
  options.checkpoint_root = flags.checkpoint_dir;
  options.analysis_threads = 1;
  options.drain_threads = 2;
  // Crash-safe vote pinning: the repin hook runs at every (re-)admission,
  // after recovery but before the shard is scheduled, so votes whose
  // journal record died with a crash are re-registered before the
  // requeued intake can be analyzed. Boundaries are deterministic, so a
  // cold start pins all of them and a recovery pins exactly the suffix.
  const size_t kStage = 100;
  const uint64_t kVoteOffset = 50;
  options.repin = [&](const std::string& id,
                      const service::RecoveryStats& recovery) {
    size_t t = std::strtoull(id.substr(7).c_str(), nullptr, 10);
    std::vector<service::PinnedVote> votes;
    for (size_t stage_start = kStage;
         stage_start < envs[t]->workload.size(); stage_start += kStage) {
      const uint64_t vote_at = stage_start + kVoteOffset - 1;
      if (recovery.analyzed <= vote_at &&
          vote_at + 1 < envs[t]->workload.size()) {
        Vote vote = VoteForStage(stage_start / kStage + t,
                                 envs[t]->vote_candidates);
        votes.push_back({vote_at, vote.plus, vote.minus});
      }
    }
    return votes;
  };
  service::TenantRouter router(
      [&](const std::string& id) {
        size_t t = std::strtoull(id.substr(7).c_str(), nullptr, 10);
        service::TenantTuner made;
        made.tuner = std::make_unique<Wfit>(envs[t]->pool.get(),
                                            envs[t]->optimizer.get(),
                                            IndexSet{}, wfit_options);
        made.pool = envs[t]->pool.get();
        return made;
      },
      options);
  router.Start();

  // Admit every tenant (recovering any checkpoint subtree; the repin hook
  // pins the surviving vote boundaries during admission).
  std::vector<service::RecoveryStats> recoveries(n);
  for (size_t t = 0; t < n; ++t) {
    recoveries[t] = router.LastRecovery(TenantName(t));
    if (!flags.checkpoint_dir.empty()) {
      std::cout << "[recover] " << TenantName(t)
                << " snapshot_loaded=" << recoveries[t].snapshot_loaded
                << " replayed=" << recoveries[t].replayed_statements
                << " resumed_at=" << recoveries[t].analyzed << "\n";
    }
  }

  // Crash injection: SIGKILL once the fleet as a whole analyzed enough
  // statements — no destructors, exactly like a machine reset.
  std::thread killer;
  std::atomic<bool> done{false};
  if (flags.kill_after > 0) {
    killer = std::thread([&] {
      while (!done.load()) {
        uint64_t total = 0;
        for (size_t t = 0; t < n; ++t) total += router.analyzed(TenantName(t));
        if (total >= flags.kill_after) {
          std::cout << "[crash] SIGKILL after " << total
                    << " aggregate statements\n"
                    << std::flush;
          ::raise(SIGKILL);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // One producer per tenant replays the whole workload with explicit
  // sequence numbers; sequences the recovered state already covers are
  // dropped (exactly-once per tenant).
  std::vector<std::thread> producers;
  for (size_t t = 0; t < n; ++t) {
    producers.emplace_back([&, t] {
      for (size_t seq = 0; seq < envs[t]->workload.size(); ++seq) {
        router.SubmitAt(TenantName(t), seq, envs[t]->workload[seq]);
      }
    });
  }
  for (auto& p : producers) p.join();
  for (size_t t = 0; t < n; ++t) {
    router.WaitUntilAnalyzed(TenantName(t), envs[t]->workload.size());
  }
  router.Shutdown();
  done.store(true);
  if (killer.joinable()) killer.join();

  for (size_t t = 0; t < n; ++t) {
    auto snap = router.Recommendation(TenantName(t));
    std::cout << "[" << TenantName(t) << "] final after " << snap->analyzed
              << " statements: "
              << snap->configuration.ToString(*envs[t]->pool) << "\n";
  }
  harness::PrintRouterMetrics(std::cout, "multi-tenant tuning service",
                              router.Metrics());
  std::cout << "\n--- labelled export (excerpt) ---\n";
  std::string text = router.ExportText();
  size_t tenant_families = text.find("# HELP wfit_tenant_stmts_total");
  if (tenant_families != std::string::npos) {
    std::cout << text.substr(tenant_families,
                             std::min<size_t>(600, text.size() -
                                                       tenant_families))
              << "...\n";
  }

  // Per-tenant trajectory files: "<seq> {ids}" starting at the tenant's
  // recovery point; verification compares against the reference run.
  int worst = 0;
  for (size_t t = 0; t < n; ++t) {
    std::vector<IndexSet> history = router.History(TenantName(t));
    const uint64_t history_start = recoveries[t].snapshot_loaded
                                       ? recoveries[t].snapshot_analyzed
                                       : 0;
    std::string suffix = ".";
    suffix += std::to_string(t);
    int code = WriteAndVerifyTrajectory(
        history, history_start,
        flags.trajectory_out.empty() ? "" : flags.trajectory_out + suffix,
        flags.reference.empty() ? "" : flags.reference + suffix,
        TenantName(t) + " ");
    worst = std::max(worst, code);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.tenants > 1) return RunMultiTenant(flags);

  // Environment: the benchmark catalog at reduced scale plus a generated
  // 4-phase trace, so the demo runs in seconds. Everything is seeded, so
  // every invocation — including a recovery — sees the same workload.
  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  TraceOptions trace_options;
  trace_options.num_phases = 4;
  trace_options.statements_per_phase = (flags.statements + 3) / 4;
  Workload workload =
      ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));
  workload.resize(flags.statements);

  // Vote candidates interned before anything else, in a fixed order, so
  // their ids agree between the original and the recovered process.
  auto intern = [&](const char* table, std::vector<const char*> cols) {
    IndexDef def;
    def.table = *catalog.FindTable(table);
    for (const char* c : cols) {
      def.columns.push_back(*catalog.FindColumn(def.table, c));
    }
    return pool.Intern(def);
  };
  std::vector<IndexId> vote_candidates = {
      intern("tpch.lineitem", {"l_shipdate"}),
      intern("tpch.lineitem", {"l_partkey"}),
      intern("tpch.orders", {"o_orderdate"}),
  };

  WfitOptions wfit_options;
  wfit_options.candidates.idx_cnt = 16;
  wfit_options.candidates.state_cnt = 256;
  service::TunerServiceOptions service_options;
  service_options.queue_capacity = 64;
  service_options.max_batch = 16;
  service_options.record_history = true;
  service_options.checkpoint_dir = flags.checkpoint_dir;
  service_options.checkpoint_every_statements = flags.checkpoint_every;

  // The service owns the tuner; with a checkpoint_dir, Open() first
  // recovers whatever an earlier (possibly killed) process left behind.
  service::RecoveryStats recovery;
  auto opened = service::TunerService::Open(
      std::make_unique<Wfit>(&pool, &optimizer, IndexSet{}, wfit_options),
      &pool, service_options, &recovery);
  if (!opened.ok()) {
    std::cerr << "recovery failed: " << opened.status().ToString() << "\n";
    return 1;
  }
  service::TunerService& service = **opened;
  const uint64_t recovered = recovery.analyzed;
  if (!flags.checkpoint_dir.empty()) {
    std::cout << "[recover] dir=" << flags.checkpoint_dir
              << " snapshot_loaded=" << recovery.snapshot_loaded
              << " snapshot_analyzed=" << recovery.snapshot_analyzed
              << " replayed_statements=" << recovery.replayed_statements
              << " replayed_feedback=" << recovery.replayed_feedback
              << " resumed_at=" << recovered << "\n";
  }
  // Pin every future DBA vote BEFORE Start(): recovery may have requeued
  // journaled-but-unanalyzed statements that the worker analyzes the
  // moment it spawns, and a vote whose boundary lies inside that window
  // must already be registered or it would apply late (votes lost to the
  // crash always have boundaries >= `recovered`, so this re-pins exactly
  // what the journal could not replay). The vote for stage s applies
  // after statement s+49 (mid-next-stage), so its boundary is pinned no
  // matter how threads interleave — which is what makes the trajectory
  // reproducible across crashes.
  const size_t kStage = 100;
  const uint64_t kVoteOffset = 50;
  for (size_t stage_start = kStage; stage_start < workload.size();
       stage_start += kStage) {
    const uint64_t vote_at = stage_start + kVoteOffset - 1;
    // Skip votes the recovered state already reflects (their effect was
    // journaled before the crash).
    if (recovered <= vote_at && vote_at + 1 < workload.size()) {
      Vote vote = VoteForStage(stage_start / kStage, vote_candidates);
      std::cout << "[dba] stage " << stage_start << ": endorse "
                << vote.plus.ToString(pool) << ", veto "
                << vote.minus.ToString(pool) << " (after statement "
                << vote_at << ")\n";
      service.FeedbackAfter(vote_at, vote.plus, vote.minus);
    }
  }
  service.Start();

  // Optional crash injection: a real SIGKILL once enough statements have
  // been analyzed — no destructors, no drain, exactly like a machine
  // reset. The exit code (137) tells the harness the kill happened.
  std::thread killer;
  if (flags.kill_after > 0) {
    killer = std::thread([&] {
      if (service.WaitUntilAnalyzed(flags.kill_after)) {
        std::cout << "[crash] SIGKILL after "
                  << service.analyzed() << " statements\n"
                  << std::flush;
        ::raise(SIGKILL);
      }
    });
  }

  // Deterministic staged replay: submit one stage from 3 producers, wait
  // for it to be analyzed, let the DBA inspect the snapshot, move on.
  for (size_t stage_start = 0; stage_start < workload.size();
       stage_start += kStage) {
    const size_t stage_end =
        std::min(stage_start + kStage, workload.size());
    if (stage_end <= recovered) continue;  // replayed from the journal
    const size_t first = std::max<size_t>(stage_start, recovered);
    const int kProducers = 3;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p, first, stage_end] {
        for (size_t seq = first + static_cast<size_t>(p); seq < stage_end;
             seq += kProducers) {
          service.SubmitAt(seq, workload[seq]);
        }
      });
    }
    for (auto& t : producers) t.join();
    service.WaitUntilAnalyzed(stage_end);
    auto snap = service.Recommendation();
    std::cout << "[dba] after " << snap->analyzed << " statements (v"
              << snap->version << "): "
              << snap->configuration.ToString(pool) << "\n";
  }
  service.Shutdown();
  // Only reached when the kill never fired (or was disabled): the waiter
  // unblocks at worker shutdown.
  if (killer.joinable()) killer.join();

  auto final_snap = service.Recommendation();
  std::cout << "\nFinal recommendation after " << final_snap->analyzed
            << " statements:\n  " << final_snap->configuration.ToString(pool)
            << "\n\n";
  harness::PrintServiceMetrics(std::cout, "tuning service metrics",
                               service.Metrics());
  std::cout << "\n--- text export (excerpt) ---\n";
  std::string text = service::ExportText(service.Metrics());
  std::cout << text.substr(0, text.find("# HELP wfit_service_queue_depth"))
            << "...\n";

  // Trajectory lines: "seq {ids}" for every statement THIS run analyzed
  // (after a recovery that starts at the snapshot the replay resumed
  // from). The reference run covers the whole workload.
  return WriteAndVerifyTrajectory(
      service.History(),
      recovery.snapshot_loaded ? recovery.snapshot_analyzed : 0,
      flags.trajectory_out, flags.reference, /*label=*/"");
}
