// The online tuning service end to end: producer threads replay a generated
// benchmark workload into a TunerService wrapping WFIT in deterministic
// stages, while a DBA inspects recommendation snapshots and casts votes.
// Ends with the harness metrics report and the Prometheus text export.
//
// With --checkpoint_dir the service becomes crash-recoverable: every
// statement is write-ahead journaled and state snapshots are taken on a
// cadence. The full kill/recover demo (what the CI crash-recovery smoke
// runs):
//
//   tuning_service_demo --trajectory_out=ref.txt            # reference
//   tuning_service_demo --checkpoint_dir=ckpt --kill_after=300   # dies
//   tuning_service_demo --checkpoint_dir=ckpt
//       --trajectory_out=rec.txt --reference=ref.txt        # recovers,
//                                                           # verifies
//
// The third run loads the latest snapshot, replays the journal suffix,
// finishes the workload, and checks its recommendation trajectory against
// the uninterrupted reference — bit-for-bit.
//
// SIGTERM/SIGINT trigger a GRACEFUL shutdown: producers stop, the service
// drains, applies due feedback, and seals journal + final checkpoint — so
// a restart recovers from the snapshot with zero journal replay. (SIGKILL
// via --kill_after stays the crash-path test.)
//
// The per-tenant environment, vote schedule and trajectory verifier live
// in src/cluster/demo_env.* and are shared with the wfit_server /
// wfit_client fleet examples, so cluster trajectories can be verified
// against references this demo produces.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/demo_env.h"
#include "harness/reporting.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/tenant_router.h"
#include "service/tuner_service.h"

namespace {

using namespace wfit;
using cluster::DemoFleetEnv;
using cluster::kDemoStage;
using cluster::kDemoVoteOffset;
using cluster::TenantEnv;
using cluster::VoteForStage;
using cluster::WriteAndVerifyTrajectory;

struct Flags {
  std::string checkpoint_dir;
  std::string trajectory_out;
  std::string reference;
  size_t statements = 600;
  uint64_t checkpoint_every = 200;
  uint64_t kill_after = 0;  // 0 = never
  size_t tenants = 1;       // > 1 routes through a TenantRouter
  bool overload = false;    // tiny queue + adaptive overload controller
  std::string trace_out;    // Chrome trace JSON written at exit
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("checkpoint_dir")) {
      flags.checkpoint_dir = v;
    } else if (const char* v = value("trajectory_out")) {
      flags.trajectory_out = v;
    } else if (const char* v = value("reference")) {
      flags.reference = v;
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("checkpoint_every")) {
      flags.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("kill_after")) {
      flags.kill_after = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("tenants")) {
      flags.tenants = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--overload") {
      flags.overload = true;
    } else if (const char* v = value("trace_out")) {
      flags.trace_out = v;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: tuning_service_demo [--checkpoint_dir=DIR] "
                   "[--statements=N] [--checkpoint_every=N] "
                   "[--kill_after=K] [--trajectory_out=F] "
                   "[--reference=F] [--tenants=N] [--overload] "
                   "[--trace_out=PATH]\n";
      std::exit(64);
    }
  }
  return flags;
}

/// Set by the SIGTERM/SIGINT handler; producers poll it and stop
/// submitting, after which the normal Shutdown path seals everything.
std::atomic<bool> g_stop{false};

void InstallSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = [](int) { g_stop.store(true); };
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

std::string TenantName(size_t t) { return DemoFleetEnv::TenantName(t); }

/// --trace_out: the run executes with tracing on and leaves one Chrome
/// trace JSON document behind. The CI overload smoke greps it for the
/// overload.shed / overload.sample_drop / overload.transition instants.
void MaybeDumpTrace(const Flags& flags) {
  if (flags.trace_out.empty()) return;
  std::ofstream out(flags.trace_out, std::ios::trunc);
  if (!out) {
    std::cerr << "[trace] cannot write " << flags.trace_out << "\n";
    return;
  }
  out << obs::ChromeTraceJson(obs::CollectSpans(), "tuning_service_demo");
  std::cout << "[trace] written to " << flags.trace_out << "\n";
}

/// The multi-tenant flow (--tenants=N): N independent databases behind one
/// TenantRouter with a shared drain pool and a per-tenant checkpoint tree
/// under --checkpoint_dir. Supports the same kill/recover/verify protocol
/// as the single-tenant path, with per-tenant trajectory files
/// (<trajectory_out>.<i> / <reference>.<i>).
int RunMultiTenant(const Flags& flags) {
  const size_t n = flags.tenants;
  DemoFleetEnv fleet(flags.statements);
  for (size_t t = 0; t < n; ++t) fleet.Env(t);  // materialize up front

  service::TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 16;
  options.shard.record_history = true;
  if (flags.overload) {
    // Overload smoke: a queue small enough that free-running producers
    // push the fill past the high watermark, so the controller walks
    // Normal → Shedding → Sampling and back while the run still
    // completes (dropped statements keep their analyzed markers).
    options.shard.queue_capacity = 16;
    options.shard.max_batch = 4;
    options.shard.overload.enabled = true;
    options.shard.overload.sample_floor = 0.25;
  }
  options.shard.checkpoint_every_statements = flags.checkpoint_every;
  options.checkpoint_root = flags.checkpoint_dir;
  options.analysis_threads = 1;
  options.drain_threads = 2;
  // Crash-safe vote pinning: the repin hook runs at every (re-)admission,
  // after recovery but before the shard is scheduled, so votes whose
  // journal record died with a crash are re-registered before the
  // requeued intake can be analyzed.
  options.repin = fleet.MakeRepinner();
  service::TenantRouter router(fleet.MakeTunerFactory(), options);
  router.Start();

  // Admit every tenant (recovering any checkpoint subtree; the repin hook
  // pins the surviving vote boundaries during admission).
  std::vector<service::RecoveryStats> recoveries(n);
  for (size_t t = 0; t < n; ++t) {
    recoveries[t] = router.LastRecovery(TenantName(t));
    if (!flags.checkpoint_dir.empty()) {
      std::cout << "[recover] " << TenantName(t)
                << " snapshot_loaded=" << recoveries[t].snapshot_loaded
                << " replayed=" << recoveries[t].replayed_statements
                << " resumed_at=" << recoveries[t].analyzed << "\n";
    }
  }

  // Crash injection: SIGKILL once the fleet as a whole analyzed enough
  // statements — no destructors, exactly like a machine reset.
  std::thread killer;
  std::atomic<bool> done{false};
  if (flags.kill_after > 0) {
    killer = std::thread([&] {
      while (!done.load()) {
        uint64_t total = 0;
        for (size_t t = 0; t < n; ++t) total += router.analyzed(TenantName(t));
        if (total >= flags.kill_after) {
          std::cout << "[crash] SIGKILL after " << total
                    << " aggregate statements\n"
                    << std::flush;
          ::raise(SIGKILL);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // One producer per tenant replays the whole workload with explicit
  // sequence numbers; sequences the recovered state already covers are
  // dropped (exactly-once per tenant).
  std::vector<std::thread> producers;
  for (size_t t = 0; t < n; ++t) {
    producers.emplace_back([&, t] {
      const Workload& workload = fleet.Env(t).workload;
      for (size_t seq = 0; seq < workload.size(); ++seq) {
        if (g_stop.load()) return;
        // Overload runs repeat each template 4x in a row: a duplicate-heavy
        // burst is exactly the load Shedding exists for, so the smoke
        // exercises overload.shed as well as the sampling drops.
        const size_t idx = flags.overload ? seq - (seq % 4) : seq;
        router.SubmitAt(TenantName(t), seq, workload[idx]);
      }
    });
  }
  for (auto& p : producers) p.join();
  const bool interrupted = g_stop.load();
  if (!interrupted) {
    for (size_t t = 0; t < n; ++t) {
      router.WaitUntilAnalyzed(TenantName(t), fleet.Env(t).workload.size());
    }
  }
  // Shutdown drains every shard, applies due feedback, and seals journal
  // + final checkpoint — the graceful path for SIGTERM too.
  router.Shutdown();
  done.store(true);
  if (killer.joinable()) killer.join();
  if (interrupted) {
    std::cout << "[signal] graceful shutdown: all shards checkpointed, "
                 "journals sealed — restart recovers without replay\n";
    return 0;
  }

  for (size_t t = 0; t < n; ++t) {
    auto snap = router.Recommendation(TenantName(t));
    // Ids, not names: the tuners intern into their factory-scoped pools,
    // so the shared-scope pool cannot resolve workload-derived indexes.
    // Same "{ids}" format the trajectory files use.
    std::cout << "[" << TenantName(t) << "] final after " << snap->analyzed
              << " statements: " << snap->configuration.ToString() << "\n";
  }
  harness::PrintRouterMetrics(std::cout, "multi-tenant tuning service",
                              router.Metrics());
  std::cout << "\n--- labelled export (excerpt) ---\n";
  std::string text = router.ExportText();
  size_t tenant_families = text.find("# HELP wfit_tenant_stmts_total");
  if (tenant_families != std::string::npos) {
    std::cout << text.substr(tenant_families,
                             std::min<size_t>(600, text.size() -
                                                       tenant_families))
              << "...\n";
  }

  // Per-tenant trajectory files: "<seq> {ids}" starting at the tenant's
  // recovery point; verification compares against the reference run.
  int worst = 0;
  for (size_t t = 0; t < n; ++t) {
    std::vector<IndexSet> history = router.History(TenantName(t));
    const uint64_t history_start = recoveries[t].snapshot_loaded
                                       ? recoveries[t].snapshot_analyzed
                                       : 0;
    std::string suffix = ".";
    suffix += std::to_string(t);
    int code = WriteAndVerifyTrajectory(
        history, history_start,
        flags.trajectory_out.empty() ? "" : flags.trajectory_out + suffix,
        flags.reference.empty() ? "" : flags.reference + suffix,
        TenantName(t) + " ");
    worst = std::max(worst, code);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  InstallSignalHandlers();
  // --trace_out is self-sufficient; WFIT_TRACE=1 in the environment also
  // enables tracing (dump still requires the flag).
  if (!flags.trace_out.empty()) obs::SetTracingEnabled(true);
  if (flags.tenants > 1) {
    int code = RunMultiTenant(flags);
    MaybeDumpTrace(flags);
    return code;
  }

  // Environment: tenant 0 of the shared demo fleet — the benchmark
  // catalog at reduced scale plus a generated 4-phase trace, so the demo
  // runs in seconds. Everything is seeded, so every invocation —
  // including a recovery — sees the same workload.
  TenantEnv env(0, flags.statements);
  IndexPool& pool = *env.pool;
  Workload& workload = env.workload;

  WfitOptions wfit_options;
  wfit_options.candidates.idx_cnt = 16;
  wfit_options.candidates.state_cnt = 256;
  service::TunerServiceOptions service_options;
  service_options.queue_capacity = 64;
  service_options.max_batch = 16;
  service_options.record_history = true;
  service_options.checkpoint_dir = flags.checkpoint_dir;
  service_options.checkpoint_every_statements = flags.checkpoint_every;
  if (flags.overload) {
    // Same overload smoke shape as the multi-tenant path.
    service_options.queue_capacity = 16;
    service_options.max_batch = 4;
    service_options.overload.enabled = true;
    service_options.overload.sample_floor = 0.25;
  }

  // The service owns the tuner; with a checkpoint_dir, Open() first
  // recovers whatever an earlier (possibly killed) process left behind.
  service::RecoveryStats recovery;
  auto opened = service::TunerService::Open(
      std::make_unique<Wfit>(&pool, env.optimizer.get(), IndexSet{},
                             wfit_options),
      &pool, service_options, &recovery);
  if (!opened.ok()) {
    std::cerr << "recovery failed: " << opened.status().ToString() << "\n";
    return 1;
  }
  service::TunerService& service = **opened;
  const uint64_t recovered = recovery.analyzed;
  if (!flags.checkpoint_dir.empty()) {
    std::cout << "[recover] dir=" << flags.checkpoint_dir
              << " snapshot_loaded=" << recovery.snapshot_loaded
              << " snapshot_analyzed=" << recovery.snapshot_analyzed
              << " replayed_statements=" << recovery.replayed_statements
              << " replayed_feedback=" << recovery.replayed_feedback
              << " resumed_at=" << recovered << "\n";
  }
  // Pin every future DBA vote BEFORE Start(): recovery may have requeued
  // journaled-but-unanalyzed statements that the worker analyzes the
  // moment it spawns, and a vote whose boundary lies inside that window
  // must already be registered or it would apply late (votes lost to the
  // crash always have boundaries >= `recovered`, so this re-pins exactly
  // what the journal could not replay). The vote for stage s applies
  // after statement s+49 (mid-next-stage), so its boundary is pinned no
  // matter how threads interleave — which is what makes the trajectory
  // reproducible across crashes.
  for (size_t stage_start = kDemoStage; stage_start < workload.size();
       stage_start += kDemoStage) {
    const uint64_t vote_at = stage_start + kDemoVoteOffset - 1;
    // Skip votes the recovered state already reflects (their effect was
    // journaled before the crash).
    if (recovered <= vote_at && vote_at + 1 < workload.size()) {
      cluster::DemoVote vote =
          VoteForStage(stage_start / kDemoStage, env.vote_candidates);
      std::cout << "[dba] stage " << stage_start << ": endorse "
                << vote.plus.ToString(pool) << ", veto "
                << vote.minus.ToString(pool) << " (after statement "
                << vote_at << ")\n";
      service.FeedbackAfter(vote_at, vote.plus, vote.minus);
    }
  }
  service.Start();

  // Optional crash injection: a real SIGKILL once enough statements have
  // been analyzed — no destructors, no drain, exactly like a machine
  // reset. The exit code (137) tells the harness the kill happened.
  std::thread killer;
  if (flags.kill_after > 0) {
    killer = std::thread([&] {
      if (service.WaitUntilAnalyzed(flags.kill_after)) {
        std::cout << "[crash] SIGKILL after "
                  << service.analyzed() << " statements\n"
                  << std::flush;
        ::raise(SIGKILL);
      }
    });
  }

  // Deterministic staged replay: submit one stage from 3 producers, wait
  // for it to be analyzed, let the DBA inspect the snapshot, move on.
  for (size_t stage_start = 0;
       stage_start < workload.size() && !g_stop.load();
       stage_start += kDemoStage) {
    const size_t stage_end =
        std::min(stage_start + kDemoStage, workload.size());
    if (stage_end <= recovered) continue;  // replayed from the journal
    const size_t first = std::max<size_t>(stage_start, recovered);
    const int kProducers = 3;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p, first, stage_end] {
        for (size_t seq = first + static_cast<size_t>(p); seq < stage_end;
             seq += kProducers) {
          if (g_stop.load()) return;
          // Same duplicate-heavy shape as the multi-tenant overload run.
          const size_t idx = flags.overload ? seq - (seq % 4) : seq;
          service.SubmitAt(seq, workload[idx]);
        }
      });
    }
    for (auto& t : producers) t.join();
    if (g_stop.load()) break;
    service.WaitUntilAnalyzed(stage_end);
    auto snap = service.Recommendation();
    std::cout << "[dba] after " << snap->analyzed << " statements (v"
              << snap->version << "): "
              << snap->configuration.ToString(pool) << "\n";
  }
  // Shutdown applies pending feedback and (by default) takes the final
  // checkpoint + seals the journal — shared by the normal and the
  // graceful SIGTERM/SIGINT exits.
  service.Shutdown();
  // Only reached when the kill never fired (or was disabled): the waiter
  // unblocks at worker shutdown.
  if (killer.joinable()) killer.join();
  if (g_stop.load()) {
    std::cout << "[signal] graceful shutdown: state checkpointed, journal "
                 "sealed — restart recovers without replay\n";
    return 0;
  }

  auto final_snap = service.Recommendation();
  std::cout << "\nFinal recommendation after " << final_snap->analyzed
            << " statements:\n  " << final_snap->configuration.ToString(pool)
            << "\n\n";
  harness::PrintServiceMetrics(std::cout, "tuning service metrics",
                               service.Metrics());
  std::cout << "\n--- text export (excerpt) ---\n";
  std::string text = service::ExportText(service.Metrics());
  std::cout << text.substr(0, text.find("# HELP wfit_service_queue_depth"))
            << "...\n";

  // Trajectory lines: "seq {ids}" for every statement THIS run analyzed
  // (after a recovery that starts at the snapshot the replay resumed
  // from). The reference run covers the whole workload.
  int code = WriteAndVerifyTrajectory(
      service.History(),
      recovery.snapshot_loaded ? recovery.snapshot_analyzed : 0,
      flags.trajectory_out, flags.reference, /*label=*/"");
  MaybeDumpTrace(flags);
  return code;
}
