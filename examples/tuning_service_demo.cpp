// The online tuning service end to end: producer threads replay a generated
// benchmark workload into a TunerService wrapping WFIT in deterministic
// stages, while a DBA inspects recommendation snapshots and casts votes.
// Ends with the harness metrics report and the Prometheus text export.
//
// With --checkpoint_dir the service becomes crash-recoverable: every
// statement is write-ahead journaled and state snapshots are taken on a
// cadence. The full kill/recover demo (what the CI crash-recovery smoke
// runs):
//
//   tuning_service_demo --trajectory_out=ref.txt            # reference
//   tuning_service_demo --checkpoint_dir=ckpt --kill_after=300   # dies
//   tuning_service_demo --checkpoint_dir=ckpt
//       --trajectory_out=rec.txt --reference=ref.txt        # recovers,
//                                                           # verifies
//
// The third run loads the latest snapshot, replays the journal suffix,
// finishes the workload, and checks its recommendation trajectory against
// the uninterrupted reference — bit-for-bit.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "optimizer/what_if.h"
#include "service/tuner_service.h"
#include "workload/benchmark_trace.h"

namespace {

using namespace wfit;

struct Flags {
  std::string checkpoint_dir;
  std::string trajectory_out;
  std::string reference;
  size_t statements = 600;
  uint64_t checkpoint_every = 200;
  uint64_t kill_after = 0;  // 0 = never
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("checkpoint_dir")) {
      flags.checkpoint_dir = v;
    } else if (const char* v = value("trajectory_out")) {
      flags.trajectory_out = v;
    } else if (const char* v = value("reference")) {
      flags.reference = v;
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("checkpoint_every")) {
      flags.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("kill_after")) {
      flags.kill_after = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: tuning_service_demo [--checkpoint_dir=DIR] "
                   "[--statements=N] [--checkpoint_every=N] "
                   "[--kill_after=K] [--trajectory_out=F] "
                   "[--reference=F]\n";
      std::exit(64);
    }
  }
  return flags;
}

/// Deterministic DBA votes, recomputable after a crash: each stage
/// endorses one pre-interned index and vetoes another, rotating through
/// the list.
struct Vote {
  IndexSet plus;
  IndexSet minus;
};

Vote VoteForStage(size_t stage, const std::vector<IndexId>& candidates) {
  Vote v;
  v.plus.Add(candidates[stage % candidates.size()]);
  v.minus.Add(candidates[(stage + 1) % candidates.size()]);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  // Environment: the benchmark catalog at reduced scale plus a generated
  // 4-phase trace, so the demo runs in seconds. Everything is seeded, so
  // every invocation — including a recovery — sees the same workload.
  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  TraceOptions trace_options;
  trace_options.num_phases = 4;
  trace_options.statements_per_phase = (flags.statements + 3) / 4;
  Workload workload =
      ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));
  workload.resize(flags.statements);

  // Vote candidates interned before anything else, in a fixed order, so
  // their ids agree between the original and the recovered process.
  auto intern = [&](const char* table, std::vector<const char*> cols) {
    IndexDef def;
    def.table = *catalog.FindTable(table);
    for (const char* c : cols) {
      def.columns.push_back(*catalog.FindColumn(def.table, c));
    }
    return pool.Intern(def);
  };
  std::vector<IndexId> vote_candidates = {
      intern("tpch.lineitem", {"l_shipdate"}),
      intern("tpch.lineitem", {"l_partkey"}),
      intern("tpch.orders", {"o_orderdate"}),
  };

  WfitOptions wfit_options;
  wfit_options.candidates.idx_cnt = 16;
  wfit_options.candidates.state_cnt = 256;
  service::TunerServiceOptions service_options;
  service_options.queue_capacity = 64;
  service_options.max_batch = 16;
  service_options.record_history = true;
  service_options.checkpoint_dir = flags.checkpoint_dir;
  service_options.checkpoint_every_statements = flags.checkpoint_every;

  // The service owns the tuner; with a checkpoint_dir, Open() first
  // recovers whatever an earlier (possibly killed) process left behind.
  service::RecoveryStats recovery;
  auto opened = service::TunerService::Open(
      std::make_unique<Wfit>(&pool, &optimizer, IndexSet{}, wfit_options),
      &pool, service_options, &recovery);
  if (!opened.ok()) {
    std::cerr << "recovery failed: " << opened.status().ToString() << "\n";
    return 1;
  }
  service::TunerService& service = **opened;
  const uint64_t recovered = recovery.analyzed;
  if (!flags.checkpoint_dir.empty()) {
    std::cout << "[recover] dir=" << flags.checkpoint_dir
              << " snapshot_loaded=" << recovery.snapshot_loaded
              << " snapshot_analyzed=" << recovery.snapshot_analyzed
              << " replayed_statements=" << recovery.replayed_statements
              << " replayed_feedback=" << recovery.replayed_feedback
              << " resumed_at=" << recovered << "\n";
  }
  service.Start();

  // Optional crash injection: a real SIGKILL once enough statements have
  // been analyzed — no destructors, no drain, exactly like a machine
  // reset. The exit code (137) tells the harness the kill happened.
  std::thread killer;
  if (flags.kill_after > 0) {
    killer = std::thread([&] {
      if (service.WaitUntilAnalyzed(flags.kill_after)) {
        std::cout << "[crash] SIGKILL after "
                  << service.analyzed() << " statements\n"
                  << std::flush;
        ::raise(SIGKILL);
      }
    });
  }

  // Deterministic staged replay: submit one stage from 3 producers, wait
  // for it to be analyzed, let the DBA inspect + vote, move on. The vote
  // for stage s applies after statement s+49 (mid-next-stage), so its
  // boundary is pinned no matter how threads interleave — which is what
  // makes the trajectory reproducible across crashes.
  const size_t kStage = 100;
  const uint64_t kVoteOffset = 50;
  for (size_t stage_start = 0; stage_start < workload.size();
       stage_start += kStage) {
    const size_t stage_end =
        std::min(stage_start + kStage, workload.size());
    if (stage_start > 0) {
      const uint64_t vote_at = stage_start + kVoteOffset - 1;
      // Skip votes the recovered state already reflects (their effect was
      // journaled before the crash).
      if (recovered <= vote_at && vote_at + 1 < workload.size()) {
        Vote vote = VoteForStage(stage_start / kStage, vote_candidates);
        std::cout << "[dba] stage " << stage_start << ": endorse "
                  << vote.plus.ToString(pool) << ", veto "
                  << vote.minus.ToString(pool) << " (after statement "
                  << vote_at << ")\n";
        service.FeedbackAfter(vote_at, vote.plus, vote.minus);
      }
    }
    if (stage_end <= recovered) continue;  // replayed from the journal
    const size_t first = std::max<size_t>(stage_start, recovered);
    const int kProducers = 3;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p, first, stage_end] {
        for (size_t seq = first + static_cast<size_t>(p); seq < stage_end;
             seq += kProducers) {
          service.SubmitAt(seq, workload[seq]);
        }
      });
    }
    for (auto& t : producers) t.join();
    service.WaitUntilAnalyzed(stage_end);
    auto snap = service.Recommendation();
    std::cout << "[dba] after " << snap->analyzed << " statements (v"
              << snap->version << "): "
              << snap->configuration.ToString(pool) << "\n";
  }
  service.Shutdown();
  // Only reached when the kill never fired (or was disabled): the waiter
  // unblocks at worker shutdown.
  if (killer.joinable()) killer.join();

  auto final_snap = service.Recommendation();
  std::cout << "\nFinal recommendation after " << final_snap->analyzed
            << " statements:\n  " << final_snap->configuration.ToString(pool)
            << "\n\n";
  harness::PrintServiceMetrics(std::cout, "tuning service metrics",
                               service.Metrics());
  std::cout << "\n--- text export (excerpt) ---\n";
  std::string text = service::ExportText(service.Metrics());
  std::cout << text.substr(0, text.find("# HELP wfit_service_queue_depth"))
            << "...\n";

  // Trajectory lines: "seq {ids}" for every statement THIS run analyzed
  // (after a recovery that starts at the snapshot the replay resumed
  // from). The reference run covers the whole workload.
  std::vector<IndexSet> history = service.History();
  const uint64_t history_start =
      recovery.snapshot_loaded ? recovery.snapshot_analyzed : 0;
  if (!flags.trajectory_out.empty()) {
    std::ofstream out(flags.trajectory_out, std::ios::trunc);
    for (size_t i = 0; i < history.size(); ++i) {
      out << (history_start + i) << " " << history[i].ToString() << "\n";
    }
    std::cout << "[trajectory] wrote " << history.size() << " entries to "
              << flags.trajectory_out << "\n";
  }
  if (!flags.reference.empty()) {
    std::ifstream ref(flags.reference);
    if (!ref) {
      std::cerr << "cannot read reference " << flags.reference << "\n";
      return 1;
    }
    std::unordered_map<uint64_t, std::string> expected;
    std::string line;
    while (std::getline(ref, line)) {
      std::istringstream is(line);
      uint64_t seq = 0;
      is >> seq;
      std::string rest;
      std::getline(is, rest);
      expected[seq] = rest;
    }
    size_t mismatches = 0;
    for (size_t i = 0; i < history.size(); ++i) {
      const uint64_t seq = history_start + i;
      auto it = expected.find(seq);
      std::string got = " " + history[i].ToString();
      if (it == expected.end() || it->second != got) {
        if (++mismatches <= 5) {
          std::cerr << "[verify] statement " << seq << ": got" << got
                    << ", reference"
                    << (it == expected.end() ? std::string(" <missing>")
                                             : it->second)
                    << "\n";
        }
      }
    }
    if (mismatches > 0) {
      std::cerr << "[verify] FAILED: " << mismatches << " of "
                << history.size()
                << " recommendations diverge from the reference\n";
      return 2;
    }
    std::cout << "[verify] OK: " << history.size()
              << " recommendations match the reference trajectory"
              << " (statements " << history_start << ".."
              << (history_start + history.size()) << ")\n";
  }
  return 0;
}
