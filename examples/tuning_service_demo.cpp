// The online tuning service end to end: multiple producer threads replay a
// generated benchmark workload into a TunerService wrapping WFIT, while a
// DBA thread concurrently reads recommendation snapshots and casts votes.
// Ends with the harness metrics report and the Prometheus text export.
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "optimizer/what_if.h"
#include "service/tuner_service.h"
#include "workload/benchmark_trace.h"

int main() {
  using namespace wfit;

  // Environment: the benchmark catalog at reduced scale plus a generated
  // 4-phase trace, so the demo runs in seconds.
  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  TraceOptions trace_options;
  trace_options.num_phases = 4;
  trace_options.statements_per_phase = 150;
  Workload workload = ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));

  // The service owns the tuner; all analysis happens on its worker thread.
  WfitOptions wfit_options;
  wfit_options.candidates.idx_cnt = 16;
  wfit_options.candidates.state_cnt = 256;
  service::TunerServiceOptions service_options;
  service_options.queue_capacity = 64;
  service_options.max_batch = 16;
  service::TunerService service(
      std::make_unique<Wfit>(&pool, &optimizer, IndexSet{}, wfit_options),
      service_options);
  service.Start();

  // Three producers replay the workload with explicit sequence numbers, so
  // the analysis order is the workload order no matter how they interleave.
  const int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t seq = p; seq < workload.size(); seq += kProducers) {
        service.SubmitAt(seq, workload[seq]);
      }
    });
  }

  // The DBA: wakes up at checkpoints, inspects the current snapshot (a
  // non-blocking read), vetoes the widest recommended index and endorses
  // the rest — the paper's semi-automatic loop, online.
  std::thread dba([&] {
    for (size_t checkpoint = 100; checkpoint <= workload.size();
         checkpoint += 100) {
      if (!service.WaitUntilAnalyzed(checkpoint)) break;
      auto snap = service.Recommendation();
      std::cout << "[dba] after " << snap->analyzed << " statements (v"
                << snap->version << "): "
                << snap->configuration.ToString(pool) << "\n";
      if (snap->configuration.empty()) continue;
      IndexId veto = *snap->configuration.begin();
      for (IndexId id : snap->configuration) {
        if (pool.def(id).columns.size() > pool.def(veto).columns.size()) {
          veto = id;
        }
      }
      IndexSet keep = snap->configuration;
      keep.Remove(veto);
      std::cout << "[dba]   veto " << pool.Name(veto) << ", endorse "
                << keep.ToString(pool) << "\n";
      service.FeedbackAfter(checkpoint - 1, keep, IndexSet{veto});
    }
  });

  for (auto& t : producers) t.join();
  dba.join();
  service.Shutdown();

  auto final_snap = service.Recommendation();
  std::cout << "\nFinal recommendation after " << final_snap->analyzed
            << " statements:\n  " << final_snap->configuration.ToString(pool)
            << "\n\n";
  harness::PrintServiceMetrics(std::cout, "tuning service metrics",
                               service.Metrics());
  std::cout << "\n--- text export (excerpt) ---\n";
  std::string text = service::ExportText(service.Metrics());
  std::cout << text.substr(0, text.find("# HELP wfit_service_queue_depth"))
            << "...\n";
  return 0;
}
