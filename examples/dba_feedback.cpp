// The introduction's motivating scenario, executed end to end:
//
//   "Suppose that the semi-automatic tuner recommends to materialize three
//    indices a, b, c. The DBA may materialize a (implicit positive
//    feedback). The DBA might also provide explicit negative feedback on c
//    ... and positive feedback for another index d that can benefit the
//    same queries as c. Based on this feedback, the tuning method can bias
//    its recommendations in favor of a, d and against c. ... the tuning
//    method may eventually override the DBA's feedback if the workload
//    provides evidence."
//
// Here: a = ix(t2.x), b = ix(t2.fk), c = ix(t1.a), d = ix(t1.a,t1.b) — d
// serves the same queries as c (prefix on a) while also covering b.
#include <iostream>

#include "core/wfit.h"
#include "optimizer/what_if.h"
#include "workload/binder.h"

namespace {

wfit::Catalog MakeCatalog() {
  using namespace wfit;
  Catalog catalog;
  TableInfo t1;
  t1.dataset = "app";
  t1.name = "t1";
  t1.row_count = 2000000;
  t1.columns = {
      {"k", 2000000, 8, 1, 2000000},
      {"a", 20000, 8, 0, 20000},
      {"b", 5000, 8, 0, 5000},
  };
  WFIT_CHECK(catalog.AddTable(std::move(t1)).ok());
  TableInfo t2;
  t2.dataset = "app";
  t2.name = "t2";
  t2.row_count = 300000;
  t2.columns = {
      {"fk", 300000, 8, 1, 2000000},
      {"x", 3000, 8, 0, 3000},
  };
  WFIT_CHECK(catalog.AddTable(std::move(t2)).ok());
  return catalog;
}

}  // namespace

int main() {
  using namespace wfit;
  Catalog catalog = MakeCatalog();
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  Binder binder(&catalog);

  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 128;
  options.candidates.creation_penalty_factor = 1e-4;
  Wfit tuner(&pool, &optimizer, IndexSet{}, options);

  auto analyze = [&](const char* sql, int times) {
    for (int i = 0; i < times; ++i) {
      auto stmt = binder.BindSql(sql);
      WFIT_CHECK(stmt.ok(), stmt.status().ToString());
      tuner.AnalyzeQuery(*stmt);
    }
  };
  auto show = [&](const char* label) {
    std::cout << label << "\n  recommendation: "
              << tuner.Recommendation().ToString(pool) << "\n\n";
  };

  // Workload that rewards indices on t1.a (+b) and t2.x.
  analyze("SELECT count(*) FROM app.t1 WHERE a BETWEEN 0 AND 300", 15);
  analyze("SELECT b FROM app.t1 WHERE a BETWEEN 100 AND 350", 15);
  analyze("SELECT count(*) FROM app.t2 WHERE x = 42", 15);
  show("[1] After the initial workload, the tuner recommends:");

  IndexId a = pool.Intern({1, {1}});        // ix(t2.x)
  IndexId c = pool.Intern({0, {1}});        // ix(t1.a)
  IndexId d = pool.Intern({0, {1, 2}});     // ix(t1.a, t1.b) — the DBA's pick

  // Implicit positive feedback: the DBA materializes `a` out-of-band.
  std::cout << "[2] DBA creates " << pool.Name(a)
            << " (implicit positive vote)\n";
  tuner.Feedback(IndexSet{a}, IndexSet{});

  // Explicit feedback: veto c (locking trouble in the past), prefer d.
  std::cout << "[3] DBA vetoes " << pool.Name(c) << " and endorses "
            << pool.Name(d) << "\n\n";
  tuner.Feedback(IndexSet{d}, IndexSet{c});
  show("[4] Consistent with the votes, WFIT now recommends:");

  // The workload keeps rewarding the d-shaped index; recommendations stay
  // biased toward the DBA's choice.
  analyze("SELECT b FROM app.t1 WHERE a BETWEEN 0 AND 200", 20);
  show("[5] After more queries that d serves well:");

  // Finally the workload turns hostile to d (heavy updates on t1.a/b):
  // WFIT is allowed to override the DBA's stale vote.
  analyze("UPDATE app.t1 SET a = a + 1, b = b + 1 "
          "WHERE k BETWEEN 0 AND 30000", 60);
  show("[6] After an update-heavy phase, WFIT overrides the old vote:");

  std::cout << "Done: votes are honored immediately, then re-evaluated "
               "against workload evidence —\nthe semi-automatic loop of "
               "Sec. 1.\n";
  return 0;
}
