// Online adaptation across workload phases: runs a 4-phase slice of the
// benchmark trace through the AUTO tuner and prints, per phase, which
// indices WFIT recommends and how total work compares to a tuner that never
// adapts. Demonstrates the "shifting workload" motivation of Sec. 1.
#include <iomanip>
#include <iostream>
#include <map>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "harness/total_work.h"
#include "workload/benchmark_trace.h"

int main() {
  using namespace wfit;
  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.15});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);

  TraceOptions trace_options;
  trace_options.num_phases = 4;
  // Long enough phases for index creations to amortize (cf. the paper's
  // 200-statement phases).
  trace_options.statements_per_phase = 200;
  trace_options.seed = 7;
  std::vector<TraceEntry> trace = GenerateBenchmarkTrace(catalog, trace_options);

  WfitOptions options;
  options.candidates.idx_cnt = 16;
  options.candidates.state_cnt = 256;
  Wfit tuner(&pool, &optimizer, IndexSet{}, options);

  TotalWorkMeter adaptive(&optimizer, IndexSet{});
  TotalWorkMeter frozen(&optimizer, IndexSet{});  // never builds an index

  int current_phase = -1;
  for (const TraceEntry& entry : trace) {
    if (entry.phase != current_phase) {
      if (current_phase >= 0) {
        std::cout << "  recommendation at phase end: "
                  << tuner.Recommendation().ToString(pool) << "\n";
      }
      current_phase = entry.phase;
      std::cout << "\n== Phase " << current_phase << " (focus: "
                << entry.dataset << ") ==\n";
    }
    tuner.AnalyzeQuery(entry.statement);
    adaptive.Step(entry.statement, tuner.Recommendation());
    frozen.Step(entry.statement, IndexSet{});
  }
  std::cout << "  recommendation at phase end: "
            << tuner.Recommendation().ToString(pool) << "\n\n";

  std::cout << std::fixed << std::setprecision(0);
  std::cout << "total work, WFIT (adaptive): " << adaptive.total() << "\n";
  std::cout << "total work, no indices ever: " << frozen.total() << "\n";
  std::cout << std::setprecision(2)
            << "speedup from online tuning:  "
            << frozen.total() / adaptive.total() << "x\n";
  std::cout << "stable partition changed " << tuner.RepartitionCount()
            << " times across the phase shifts\n";
  return 0;
}
