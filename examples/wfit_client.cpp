// Fleet client for wfit_server nodes: replays the shared demo workload
// for N tenants over the wire (exactly-once kSubmitAt with redirect and
// backpressure handling), registers the deterministic DBA vote schedule
// up front, optionally triggers a LIVE tenant migration mid-workload,
// then stitches each tenant's recommendation trajectory back together
// from per-node kGetHistory segments and verifies it bit-for-bit against
// a reference file produced by `tuning_service_demo --tenants=N`.
//
//   wfit_client --nodes=a=127.0.0.1:7601,b=127.0.0.1:7602 --tenants=2 \
//       --statements=260 --migrate=tenant-0:120 \
//       --trajectory_out=got --reference=ref [--shutdown_nodes]
//
// Producers are crash-tolerant: when a node dies mid-workload they
// rewind to the analyzed watermark and resubmit (exactly-once dedup
// absorbs the overlap), so a SIGKILLed fleet node just looks like a
// stall. With --allow_gap, trajectory verification accepts a missing
// prefix (history that lived only on a killed node) and instead verifies
// the longest contiguous suffix bit-for-bit against the reference —
// which is exactly the failover guarantee.
//
// Exit codes: 0 consistent, 1 infrastructure failure, 2 trajectory
// divergence (the demo's convention).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/demo_env.h"
#include "cluster/placement.h"
#include "obs/trace_export.h"

namespace {

using namespace wfit;
using cluster::ClusterClient;
using cluster::DemoFleetEnv;

/// Pulls every reachable node's span dump (kDumpTrace), merges them into
/// one Chrome trace at `path`, and returns the number of distinct trace
/// ids whose spans appear on two or more nodes — the distributed-trace
/// stitching the CI smoke asserts on.
size_t DumpFleetTrace(ClusterClient& client,
                      const cluster::ClusterConfig& config,
                      const std::string& path) {
  std::vector<std::pair<std::string, std::vector<obs::Span>>> processes;
  std::map<uint64_t, std::set<std::string>> trace_nodes;
  size_t total = 0;
  for (const cluster::NodeInfo& n : config.nodes) {
    net::Request req;
    req.type = net::MsgType::kDumpTrace;
    auto resp = client.CallNode(n.id, std::move(req));
    if (!resp.ok() || resp->kind != net::RespKind::kOk) continue;
    std::vector<obs::Span> spans = obs::ParseSpanLines(resp->text);
    for (const obs::Span& s : spans) {
      if (s.trace_id != 0) trace_nodes[s.trace_id].insert(n.id);
    }
    total += spans.size();
    processes.emplace_back("node " + n.id, std::move(spans));
  }
  size_t cross_node = 0;
  for (const auto& [trace, nodes] : trace_nodes) {
    if (nodes.size() >= 2) ++cross_node;
  }
  std::ofstream out(path, std::ios::trunc);
  if (out) out << obs::ChromeTraceJsonMulti(processes);
  std::cout << "[client] merged trace: " << total << " spans from "
            << processes.size() << " node(s), cross-node traces: "
            << cross_node << ", written to " << path << "\n"
            << std::flush;
  return cross_node;
}

struct Flags {
  std::string nodes;
  size_t tenants = 2;
  size_t statements = 600;
  std::string migrate;  // "TENANT:AFTER_N"
  std::string trajectory_out;
  std::string reference;
  bool shutdown_nodes = false;
  bool allow_gap = false;
  std::string trace_out;  // merge fleet kDumpTrace dumps into this file
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("nodes")) {
      flags.nodes = v;
    } else if (const char* v = value("tenants")) {
      flags.tenants = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("migrate")) {
      flags.migrate = v;
    } else if (const char* v = value("trajectory_out")) {
      flags.trajectory_out = v;
    } else if (const char* v = value("reference")) {
      flags.reference = v;
    } else if (arg == "--shutdown_nodes") {
      flags.shutdown_nodes = true;
    } else if (arg == "--allow_gap") {
      flags.allow_gap = true;
    } else if (const char* v = value("trace_out")) {
      flags.trace_out = v;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: wfit_client --nodes=SPEC [--tenants=N] "
                   "[--statements=N] [--migrate=TENANT:AFTER_N] "
                   "[--trajectory_out=F] [--reference=F] "
                   "[--shutdown_nodes] [--allow_gap] [--trace_out=F]\n";
      std::exit(64);
    }
  }
  if (flags.nodes.empty()) {
    std::cerr << "wfit_client: --nodes is required\n";
    std::exit(64);
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  auto parsed = cluster::ParseNodeList(flags.nodes);
  if (!parsed.ok()) {
    std::cerr << "bad --nodes: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const cluster::ClusterConfig config = std::move(*parsed);
  DemoFleetEnv fleet(flags.statements);

  // Optional migration trigger: once the tenant has analyzed AFTER_N
  // statements, ask its current owner to hand it to the first node that
  // is NOT the owner — a true mid-workload live migration.
  std::string migrate_tenant;
  uint64_t migrate_after = 0;
  if (!flags.migrate.empty()) {
    const size_t colon = flags.migrate.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "bad --migrate (want TENANT:AFTER_N)\n";
      return 1;
    }
    migrate_tenant = flags.migrate.substr(0, colon);
    migrate_after =
        std::strtoull(flags.migrate.c_str() + colon + 1, nullptr, 10);
    if (config.nodes.size() < 2) {
      std::cerr << "--migrate needs at least 2 nodes\n";
      return 1;
    }
  }

  std::atomic<bool> failed{false};
  std::thread migrator;
  if (!migrate_tenant.empty()) {
    migrator = std::thread([&] {
      ClusterClient client(config);
      while (!failed.load()) {
        net::Request probe;
        probe.type = net::MsgType::kGetAnalyzed;
        auto resp = client.Call(migrate_tenant, probe);
        if (resp.ok() && resp->kind == net::RespKind::kOk &&
            resp->analyzed >= migrate_after) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (failed.load()) return;
      const cluster::NodeInfo* owner =
          cluster::OwnerOf(client.config(), migrate_tenant);
      std::string target;
      for (const cluster::NodeInfo& n : client.config().nodes) {
        if (owner == nullptr || n.id != owner->id) {
          target = n.id;
          break;
        }
      }
      net::Request req;
      req.type = net::MsgType::kMigrate;
      req.target_node = target;
      auto resp = client.Call(migrate_tenant, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) {
        std::cerr << "[client] migration failed: "
                  << (resp.ok() ? resp->message : resp.status().ToString())
                  << "\n";
        failed.store(true);
        return;
      }
      std::cout << "[client] migrated " << migrate_tenant << " to "
                << target << " in " << resp->count << "ms\n"
                << std::flush;
    });
  }

  // One crash-tolerant producer per tenant: votes first, then the
  // exactly-once replay that rewinds to the analyzed watermark whenever
  // progress stalls (a killed node's in-queue statements were never
  // journaled — the survivor needs them again; dedup drops the rest).
  std::vector<std::thread> producers;
  for (size_t t = 0; t < flags.tenants; ++t) {
    producers.emplace_back([&, t] {
      cluster::ClusterClientOptions copts;
      copts.retry_deadline_ms = 5000;
      copts.jitter_seed = t + 1;
      ClusterClient client(config, copts);
      if (!cluster::ReplayTenantWorkload(client, fleet, t,
                                         /*register_votes=*/true,
                                         /*overall_deadline_ms=*/180000)) {
        std::cerr << "[client] replay failed for "
                  << DemoFleetEnv::TenantName(t) << "\n";
        failed.store(true);
      }
    });
  }
  for (auto& p : producers) p.join();
  if (migrator.joinable()) migrator.join();
  if (failed.load()) return 1;

  // Stitch each tenant's trajectory from per-node segments: a migrated
  // tenant's prefix stays on the source (retired history), the suffix
  // lives on the target; every segment self-describes its start.
  int worst = 0;
  ClusterClient admin(config);
  for (size_t t = 0; t < flags.tenants; ++t) {
    const std::string tenant = DemoFleetEnv::TenantName(t);
    std::vector<std::optional<IndexSet>> stitched(flags.statements);
    for (const cluster::NodeInfo& n : config.nodes) {
      net::Request req;
      req.type = net::MsgType::kGetHistory;
      req.tenant = tenant;
      auto resp = admin.CallNode(n.id, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) continue;
      for (size_t i = 0; i < resp->history.size(); ++i) {
        const uint64_t seq = resp->history_start + i;
        if (seq < stitched.size()) stitched[seq] = resp->history[i];
      }
    }
    // The verified window: all of [0, statements) normally; with
    // --allow_gap, the longest contiguous suffix — the prefix may have
    // lived only in a killed node's history, but everything from the
    // adopted boundary on must still match the reference bit-for-bit.
    size_t start = stitched.size();
    while (start > 0 && stitched[start - 1].has_value()) --start;
    if (start == stitched.size()) {
      std::cerr << "[client] " << tenant << ": no node holds any of the "
                << "trajectory\n";
      worst = std::max(worst, 2);
      continue;
    }
    if (start > 0) {
      if (!flags.allow_gap) {
        std::cerr << "[client] " << tenant << ": no node holds statement "
                  << (start - 1) << " of the trajectory\n";
        worst = std::max(worst, 2);
        continue;
      }
      std::cout << "[client] " << tenant << ": statements [0, " << start
                << ") died with a killed node; verifying the surviving "
                << "suffix [" << start << ", " << stitched.size() << ")\n";
    }
    std::vector<IndexSet> history;
    for (size_t seq = start; seq < stitched.size(); ++seq) {
      history.push_back(std::move(*stitched[seq]));
    }
    std::string suffix = ".";
    suffix += std::to_string(t);
    int code = cluster::WriteAndVerifyTrajectory(
        history, /*history_start=*/start,
        flags.trajectory_out.empty() ? "" : flags.trajectory_out + suffix,
        flags.reference.empty() ? "" : flags.reference + suffix,
        tenant + " ");
    worst = std::max(worst, code);
  }

  if (!flags.trace_out.empty()) {
    DumpFleetTrace(admin, config, flags.trace_out);
  }

  if (flags.shutdown_nodes) {
    for (const cluster::NodeInfo& n : config.nodes) {
      net::Request req;
      req.type = net::MsgType::kShutdownNode;
      (void)admin.CallNode(n.id, std::move(req));
    }
    std::cout << "[client] requested shutdown of every node\n";
  }
  return worst;
}
