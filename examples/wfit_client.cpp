// Fleet client for wfit_server nodes: replays the shared demo workload
// for N tenants over the wire (exactly-once kSubmitAt with redirect and
// backpressure handling), registers the deterministic DBA vote schedule
// up front, optionally triggers a LIVE tenant migration mid-workload,
// then stitches each tenant's recommendation trajectory back together
// from per-node kGetHistory segments and verifies it bit-for-bit against
// a reference file produced by `tuning_service_demo --tenants=N`.
//
//   wfit_client --nodes=a=127.0.0.1:7601,b=127.0.0.1:7602 --tenants=2 \
//       --statements=260 --migrate=tenant-0:120 \
//       --trajectory_out=got --reference=ref [--shutdown_nodes]
//
// Exit codes: 0 consistent, 1 infrastructure failure, 2 trajectory
// divergence (the demo's convention).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/demo_env.h"
#include "cluster/placement.h"

namespace {

using namespace wfit;
using cluster::ClusterClient;
using cluster::DemoFleetEnv;

struct Flags {
  std::string nodes;
  size_t tenants = 2;
  size_t statements = 600;
  std::string migrate;  // "TENANT:AFTER_N"
  std::string trajectory_out;
  std::string reference;
  bool shutdown_nodes = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("nodes")) {
      flags.nodes = v;
    } else if (const char* v = value("tenants")) {
      flags.tenants = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value("migrate")) {
      flags.migrate = v;
    } else if (const char* v = value("trajectory_out")) {
      flags.trajectory_out = v;
    } else if (const char* v = value("reference")) {
      flags.reference = v;
    } else if (arg == "--shutdown_nodes") {
      flags.shutdown_nodes = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: wfit_client --nodes=SPEC [--tenants=N] "
                   "[--statements=N] [--migrate=TENANT:AFTER_N] "
                   "[--trajectory_out=F] [--reference=F] "
                   "[--shutdown_nodes]\n";
      std::exit(64);
    }
  }
  if (flags.nodes.empty()) {
    std::cerr << "wfit_client: --nodes is required\n";
    std::exit(64);
  }
  return flags;
}

/// Registers tenant `t`'s whole deterministic vote schedule before any
/// statement is submitted, mirroring the demo's pin-before-start rule.
bool RegisterVotes(ClusterClient& client, DemoFleetEnv& fleet, size_t t) {
  const std::string tenant = DemoFleetEnv::TenantName(t);
  for (const service::PinnedVote& vote : fleet.PinnedVotesFor(t, 0)) {
    net::Request req;
    req.type = net::MsgType::kFeedbackAfter;
    req.seq = vote.after_seq;
    req.f_plus = vote.f_plus;
    req.f_minus = vote.f_minus;
    auto resp = client.Call(tenant, std::move(req));
    if (!resp.ok() || resp->kind != net::RespKind::kOk) {
      std::cerr << "[client] vote registration failed for " << tenant
                << ": "
                << (resp.ok() ? resp->message : resp.status().ToString())
                << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  auto parsed = cluster::ParseNodeList(flags.nodes);
  if (!parsed.ok()) {
    std::cerr << "bad --nodes: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const cluster::ClusterConfig config = std::move(*parsed);
  DemoFleetEnv fleet(flags.statements);

  // Optional migration trigger: once the tenant has analyzed AFTER_N
  // statements, ask its current owner to hand it to the first node that
  // is NOT the owner — a true mid-workload live migration.
  std::string migrate_tenant;
  uint64_t migrate_after = 0;
  if (!flags.migrate.empty()) {
    const size_t colon = flags.migrate.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "bad --migrate (want TENANT:AFTER_N)\n";
      return 1;
    }
    migrate_tenant = flags.migrate.substr(0, colon);
    migrate_after =
        std::strtoull(flags.migrate.c_str() + colon + 1, nullptr, 10);
    if (config.nodes.size() < 2) {
      std::cerr << "--migrate needs at least 2 nodes\n";
      return 1;
    }
  }

  std::atomic<bool> failed{false};
  std::thread migrator;
  if (!migrate_tenant.empty()) {
    migrator = std::thread([&] {
      ClusterClient client(config);
      while (!failed.load()) {
        net::Request probe;
        probe.type = net::MsgType::kGetAnalyzed;
        auto resp = client.Call(migrate_tenant, probe);
        if (resp.ok() && resp->kind == net::RespKind::kOk &&
            resp->analyzed >= migrate_after) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (failed.load()) return;
      const cluster::NodeInfo* owner =
          cluster::OwnerOf(client.config(), migrate_tenant);
      std::string target;
      for (const cluster::NodeInfo& n : client.config().nodes) {
        if (owner == nullptr || n.id != owner->id) {
          target = n.id;
          break;
        }
      }
      net::Request req;
      req.type = net::MsgType::kMigrate;
      req.target_node = target;
      auto resp = client.Call(migrate_tenant, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) {
        std::cerr << "[client] migration failed: "
                  << (resp.ok() ? resp->message : resp.status().ToString())
                  << "\n";
        failed.store(true);
        return;
      }
      std::cout << "[client] migrated " << migrate_tenant << " to "
                << target << " in " << resp->count << "ms\n"
                << std::flush;
    });
  }

  // One producer per tenant: votes first, then the exactly-once replay.
  std::vector<std::thread> producers;
  for (size_t t = 0; t < flags.tenants; ++t) {
    producers.emplace_back([&, t] {
      ClusterClient client(config);
      if (!RegisterVotes(client, fleet, t)) {
        failed.store(true);
        return;
      }
      const std::string tenant = DemoFleetEnv::TenantName(t);
      const Workload& workload = fleet.Env(t).workload;
      for (size_t seq = 0; seq < workload.size() && !failed.load();
           ++seq) {
        net::Request req;
        req.type = net::MsgType::kSubmitAt;
        req.seq = seq;
        req.has_statement = true;
        req.statement = workload[seq];
        auto resp = client.Call(tenant, std::move(req));
        if (!resp.ok() || resp->kind != net::RespKind::kOk) {
          std::cerr << "[client] submit " << tenant << "#" << seq
                    << " failed: "
                    << (resp.ok() ? resp->message
                                  : resp.status().ToString())
                    << "\n";
          failed.store(true);
          return;
        }
      }
      // Wait until the shard analyzed everything (it may still be
      // draining its queue).
      while (!failed.load()) {
        net::Request probe;
        probe.type = net::MsgType::kGetAnalyzed;
        auto resp = client.Call(tenant, probe);
        if (resp.ok() && resp->kind == net::RespKind::kOk &&
            resp->analyzed >= workload.size()) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (auto& p : producers) p.join();
  if (migrator.joinable()) migrator.join();
  if (failed.load()) return 1;

  // Stitch each tenant's trajectory from per-node segments: a migrated
  // tenant's prefix stays on the source (retired history), the suffix
  // lives on the target; every segment self-describes its start.
  int worst = 0;
  ClusterClient admin(config);
  for (size_t t = 0; t < flags.tenants; ++t) {
    const std::string tenant = DemoFleetEnv::TenantName(t);
    std::vector<std::optional<IndexSet>> stitched(flags.statements);
    for (const cluster::NodeInfo& n : config.nodes) {
      net::Request req;
      req.type = net::MsgType::kGetHistory;
      req.tenant = tenant;
      auto resp = admin.CallNode(n.id, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) continue;
      for (size_t i = 0; i < resp->history.size(); ++i) {
        const uint64_t seq = resp->history_start + i;
        if (seq < stitched.size()) stitched[seq] = resp->history[i];
      }
    }
    std::vector<IndexSet> history;
    bool gap = false;
    for (size_t seq = 0; seq < stitched.size(); ++seq) {
      if (!stitched[seq].has_value()) {
        std::cerr << "[client] " << tenant << ": no node holds statement "
                  << seq << " of the trajectory\n";
        gap = true;
        break;
      }
      history.push_back(std::move(*stitched[seq]));
    }
    if (gap) {
      worst = std::max(worst, 2);
      continue;
    }
    std::string suffix = ".";
    suffix += std::to_string(t);
    int code = cluster::WriteAndVerifyTrajectory(
        history, /*history_start=*/0,
        flags.trajectory_out.empty() ? "" : flags.trajectory_out + suffix,
        flags.reference.empty() ? "" : flags.reference + suffix,
        tenant + " ");
    worst = std::max(worst, code);
  }

  if (flags.shutdown_nodes) {
    for (const cluster::NodeInfo& n : config.nodes) {
      net::Request req;
      req.type = net::MsgType::kShutdownNode;
      (void)admin.CallNode(n.id, std::move(req));
    }
    std::cout << "[client] requested shutdown of every node\n";
  }
  return worst;
}
