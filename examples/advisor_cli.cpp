// A miniature semi-automatic index advisor, in the spirit of the paper's
// middleware prototype: reads a ';'-separated SQL script, analyzes each
// statement online, and prints the evolving recommendation. DBA votes are
// embedded in the script as directives:
//
//     @vote+ table(col[,col...])     positive vote
//     @vote- table(col[,col...])     negative vote
//     @show                          print the current recommendation
//
// Usage: advisor_cli [script.sql]   (defaults to examples/sample_workload.sql,
// falling back to a built-in script when the file is absent)
#include <fstream>
#include <iostream>
#include <sstream>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "workload/binder.h"

namespace {

const char* kBuiltinScript = R"sql(
SELECT count(*) FROM tpce.security WHERE s_pe BETWEEN 60 AND 80;
SELECT count(*) FROM tpce.security WHERE s_pe BETWEEN 20 AND 35;
SELECT count(*) FROM tpce.security WHERE s_pe BETWEEN 90 AND 95;
@show;
SELECT count(*) FROM tpce.daily_market WHERE dm_date BETWEEN 9000 AND 9030;
SELECT count(*) FROM tpce.daily_market WHERE dm_date BETWEEN 9100 AND 9140;
@vote+ tpce.daily_market(dm_date,dm_close);
@show;
UPDATE tpce.daily_market SET dm_close = dm_close + 1 WHERE dm_date BETWEEN 9000 AND 9001;
SELECT count(*) FROM tpce.security WHERE s_pe BETWEEN 50 AND 70;
@show;
)sql";

using namespace wfit;

/// Parses "table(col,col)" into an IndexDef; returns ok=false on errors.
bool ParseIndexSpec(const std::string& spec, const Catalog& catalog,
                    IndexDef* out) {
  size_t open = spec.find('(');
  size_t close = spec.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  auto table = catalog.FindTable(spec.substr(0, open));
  if (!table.ok()) return false;
  out->table = *table;
  out->columns.clear();
  std::stringstream cols(spec.substr(open + 1, close - open - 1));
  std::string col;
  while (std::getline(cols, col, ',')) {
    auto ordinal = catalog.FindColumn(*table, col);
    if (!ordinal.ok()) return false;
    out->columns.push_back(*ordinal);
  }
  return !out->columns.empty();
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  size_t e = s.find_last_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

/// Drops leading "--" comment lines so directives after comments work
/// (the SQL lexer already skips comments inside statements).
std::string StripLeadingComments(std::string s) {
  while (true) {
    s = Trim(s);
    if (s.rfind("--", 0) != 0) return s;
    size_t eol = s.find('\n');
    if (eol == std::string::npos) return "";
    s = s.substr(eol + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  std::string path =
      argc > 1 ? argv[1] : std::string("examples/sample_workload.sql");
  if (std::ifstream in{path}) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
    std::cout << "-- reading workload from " << path << "\n";
  } else {
    script = kBuiltinScript;
    std::cout << "-- no script file found, using the built-in demo script\n";
  }

  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.1});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  Binder binder(&catalog);

  WfitOptions options;
  options.candidates.idx_cnt = 16;
  options.candidates.state_cnt = 256;
  options.candidates.creation_penalty_factor = 1e-4;
  Wfit tuner(&pool, &optimizer, IndexSet{}, options);

  size_t analyzed = 0, errors = 0;
  std::stringstream statements(script);
  std::string raw;
  while (std::getline(statements, raw, ';')) {
    std::string text = StripLeadingComments(raw);
    if (text.empty()) continue;
    if (text[0] == '@') {
      if (text.rfind("@show", 0) == 0) {
        std::cout << "[advisor] recommendation: "
                  << tuner.Recommendation().ToString(pool) << "\n";
      } else if (text.rfind("@vote+", 0) == 0 ||
                 text.rfind("@vote-", 0) == 0) {
        bool positive = text[5] == '+';
        IndexDef def;
        if (!ParseIndexSpec(Trim(text.substr(6)), catalog, &def)) {
          std::cout << "[advisor] bad vote spec: " << text << "\n";
          ++errors;
          continue;
        }
        IndexId id = pool.Intern(def);
        tuner.Feedback(positive ? IndexSet{id} : IndexSet{},
                       positive ? IndexSet{} : IndexSet{id});
        std::cout << "[advisor] recorded " << (positive ? "+" : "-")
                  << " vote on " << pool.Name(id) << "\n";
      } else {
        std::cout << "[advisor] unknown directive: " << text << "\n";
        ++errors;
      }
      continue;
    }
    auto stmt = binder.BindSql(text);
    if (!stmt.ok()) {
      std::cout << "[advisor] cannot analyze (" << stmt.status().ToString()
                << "): " << text << "\n";
      ++errors;
      continue;
    }
    tuner.AnalyzeQuery(*stmt);
    ++analyzed;
  }

  std::cout << "\n-- analyzed " << analyzed << " statements (" << errors
            << " errors)\n";
  std::cout << "-- final recommendation: "
            << tuner.Recommendation().ToString(pool) << "\n";
  return errors == 0 ? 0 : 1;
}
