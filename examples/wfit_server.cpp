// One node of a tuning fleet: a TunerNode (TenantRouter + RPC server +
// placement) serving the shared demo environment, so any number of these
// processes plus one wfit_client form a live multi-node deployment on
// one machine:
//
//   wfit_server --node_id=a --listen=127.0.0.1:7601 \
//       --nodes=a=127.0.0.1:7601,b=127.0.0.1:7602 --checkpoint_root=na &
//   wfit_server --node_id=b --listen=127.0.0.1:7602 \
//       --nodes=a=127.0.0.1:7601,b=127.0.0.1:7602 --checkpoint_root=nb &
//   wfit_client --nodes=a=127.0.0.1:7601,b=127.0.0.1:7602 --tenants=2 \
//       --migrate=tenant-0:120 --trajectory_out=got --reference=ref
//
// SIGTERM/SIGINT (or a kShutdownNode RPC) shut the node down gracefully:
// every resident shard drains, applies due feedback, and seals journal +
// final checkpoint, so a restart recovers with zero journal replay.
//
// With --membership (plus --fleet_root=DIR shared by every node) the
// fleet self-heals: lease-based failure detection, automatic failover of
// a dead node's tenants from the shared checkpoint tree, and a config
// fan-out — the process logs "failover completed" when it adopts, which
// the CI chaos smoke greps for after SIGKILLing a peer.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cluster/demo_env.h"
#include "cluster/membership.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace {

using namespace wfit;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_trace{false};  // set by SIGUSR2

void DumpTrace(const std::string& node_id, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "[wfit_server] cannot write trace to " << path << "\n";
    return;
  }
  out << obs::ChromeTraceJson(obs::CollectSpans(), "node " + node_id);
  std::cout << "[wfit_server] node " << node_id << " trace written to "
            << path << "\n"
            << std::flush;
}

struct Flags {
  std::string node_id;
  std::string listen = "127.0.0.1:0";
  std::string nodes;
  std::string checkpoint_root;
  size_t statements = 600;
  // Self-healing fleet knobs.
  bool membership = false;
  std::string fleet_root;
  int heartbeat_ms = 50;
  int lease_ms = 600;
  // Observability knobs.
  bool trace = false;         // force tracing on (WFIT_TRACE also works)
  std::string trace_out;      // Chrome trace path; default trace_<id>.json
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value("node_id")) {
      flags.node_id = v;
    } else if (const char* v = value("listen")) {
      flags.listen = v;
    } else if (const char* v = value("nodes")) {
      flags.nodes = v;
    } else if (const char* v = value("checkpoint_root")) {
      flags.checkpoint_root = v;
    } else if (const char* v = value("statements")) {
      flags.statements = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--membership") {
      flags.membership = true;
    } else if (arg == "--trace") {
      flags.trace = true;
    } else if (const char* v = value("trace_out")) {
      flags.trace_out = v;
    } else if (const char* v = value("fleet_root")) {
      flags.fleet_root = v;
    } else if (const char* v = value("heartbeat_ms")) {
      flags.heartbeat_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("lease_ms")) {
      flags.lease_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: wfit_server --node_id=ID --nodes=SPEC "
                   "[--listen=HOST:PORT] [--checkpoint_root=DIR] "
                   "[--statements=N] [--membership --fleet_root=DIR "
                   "--heartbeat_ms=N --lease_ms=N] "
                   "[--trace] [--trace_out=PATH]\n";
      std::exit(64);
    }
  }
  if (flags.node_id.empty() || flags.nodes.empty()) {
    std::cerr << "wfit_server: --node_id and --nodes are required\n";
    std::exit(64);
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  struct sigaction sa {};
  sa.sa_handler = [](int) { g_stop.store(true); };
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction dump {};
  dump.sa_handler = [](int) { g_dump_trace.store(true); };
  ::sigaction(SIGUSR2, &dump, nullptr);

  obs::SetLogNodeId(flags.node_id);
  if (flags.trace) obs::SetTracingEnabled(true);
  const std::string trace_path = flags.trace_out.empty()
                                     ? "trace_" + flags.node_id + ".json"
                                     : flags.trace_out;

  auto config = cluster::ParseNodeList(flags.nodes);
  if (!config.ok()) {
    std::cerr << "bad --nodes: " << config.status().ToString() << "\n";
    return 1;
  }
  const size_t colon = flags.listen.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "bad --listen (want HOST:PORT)\n";
    return 1;
  }

  // Same per-shard settings as the demo's multi-tenant flow, so the
  // fleet's trajectories verify against demo-produced references.
  auto fleet =
      std::make_shared<cluster::DemoFleetEnv>(flags.statements);
  cluster::TunerNodeOptions options;
  options.node_id = flags.node_id;
  options.config = std::move(*config);
  options.host = flags.listen.substr(0, colon);
  options.port = static_cast<uint16_t>(
      std::strtoul(flags.listen.c_str() + colon + 1, nullptr, 10));
  options.router.shard.queue_capacity = 64;
  options.router.shard.max_batch = 16;
  options.router.shard.record_history = true;
  options.router.shard.checkpoint_every_statements = 200;
  options.router.checkpoint_root = flags.checkpoint_root;
  options.router.analysis_threads = 1;
  options.router.drain_threads = 2;
  options.router.repin = fleet->MakeRepinner();
  if (flags.membership) {
    if (flags.fleet_root.empty()) {
      std::cerr << "--membership requires --fleet_root (the shared "
                   "checkpoint tree failover recovers from)\n";
      return 1;
    }
    options.fleet_root = flags.fleet_root;
    options.enable_membership = true;
    options.membership.heartbeat_interval_ms = flags.heartbeat_ms;
    options.membership.lease_ms = flags.lease_ms;
    // Crash realism: a self-healing node must survive on journal +
    // checkpoint boundaries alone, exactly what a SIGKILL leaves.
    options.router.shard.checkpoint_on_shutdown = false;
  }

  cluster::TunerNode node(fleet->MakeTunerFactory(), std::move(options));
  Status st = node.Start();
  if (!st.ok()) {
    std::cerr << "start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "[wfit_server] node " << node.node_id() << " listening on "
            << flags.listen.substr(0, colon) << ":" << node.port() << "\n"
            << std::flush;

  uint64_t reported_failovers = 0;
  while (!g_stop.load() && !node.ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_dump_trace.exchange(false)) {
      DumpTrace(node.node_id(), trace_path);
    }
    if (cluster::Membership* membership = node.membership()) {
      const cluster::MembershipCounters counters = membership->Counters();
      if (counters.failovers > reported_failovers) {
        reported_failovers = counters.failovers;
        std::cout << "[wfit_server] node " << node.node_id()
                  << " failover completed: adopted "
                  << counters.tenants_failed_over << " tenant(s) so far, "
                  << "takeover " << counters.last_takeover_ms << "ms\n"
                  << std::flush;
      }
    }
  }
  std::cout << "[wfit_server] node " << node.node_id()
            << " shutting down gracefully (final checkpoints + journal "
               "seal)\n"
            << std::flush;
  node.Shutdown();
  if (obs::TracingEnabled()) DumpTrace(node.node_id(), trace_path);
  return 0;
}
