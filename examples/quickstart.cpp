// Quickstart: the WFIT public API in ~60 lines of application code.
//   1. Build (or load) a catalog and wire up the cost model + what-if
//      optimizer.
//   2. Create a Wfit tuner.
//   3. Feed it the workload statement by statement (AnalyzeQuery) and read
//      Recommendation() whenever you like.
//   4. Cast votes with Feedback() — the next recommendations respect them.
#include <iostream>

#include "catalog/benchmark_schemas.h"
#include "core/wfit.h"
#include "optimizer/what_if.h"
#include "workload/binder.h"

int main() {
  using namespace wfit;

  // 1. A statistics-only catalog with the four benchmark datasets.
  Catalog catalog = BuildBenchmarkCatalog(BenchmarkScale{0.1});
  IndexPool pool(&catalog);
  CostModel cost_model(&catalog, &pool);
  WhatIfOptimizer optimizer(&cost_model);
  Binder binder(&catalog);

  // 2. A semi-automatic tuner starting from an empty physical design.
  WfitOptions options;
  options.candidates.idx_cnt = 16;
  options.candidates.state_cnt = 256;
  Wfit tuner(&pool, &optimizer, /*initial_materialized=*/IndexSet{}, options);

  // 3. Analyze a small workload (the paper's running-example shapes).
  const char* workload[] = {
      "SELECT count(*) FROM tpce.security "
      "WHERE s_pe BETWEEN 63.278 AND 86.091",
      "SELECT count(*) FROM tpce.security "
      "WHERE s_pe BETWEEN 40.0 AND 55.0 AND s_exch_date BETWEEN 8000 AND 9000",
      "SELECT count(*) FROM tpce.security, tpce.daily_market "
      "WHERE tpce.security.s_symb = tpce.daily_market.dm_s_symb "
      "AND tpce.daily_market.dm_date BETWEEN 9100 AND 9130",
      "UPDATE tpch.lineitem SET l_tax = l_tax + 0.000001 "
      "WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943",
  };
  for (int round = 0; round < 12; ++round) {
    for (const char* sql : workload) {
      auto stmt = binder.BindSql(sql);
      if (!stmt.ok()) {
        std::cerr << "bind error: " << stmt.status().ToString() << "\n";
        return 1;
      }
      tuner.AnalyzeQuery(*stmt);
    }
  }
  std::cout << "After 48 statements WFIT recommends:\n  "
            << tuner.Recommendation().ToString(pool) << "\n";

  // 4. Semi-automatic step: the DBA dislikes one of the recommended
  //    indices and vetoes it; the recommendation must respect the vote.
  IndexSet rec = tuner.Recommendation();
  if (!rec.empty()) {
    IndexId vetoed = *rec.begin();
    std::cout << "DBA vetoes " << pool.Name(vetoed) << "\n";
    tuner.Feedback(IndexSet{}, IndexSet{vetoed});
    std::cout << "Recommendation is now:\n  "
              << tuner.Recommendation().ToString(pool) << "\n";
  }
  return 0;
}
